// Command bctrace analyzes recorded execution traces (the JSONL files
// bcbench -obs and the obs.WriteJSONL API produce) offline: volume
// accounting, load imbalance, per-round latency, invariant checking,
// and canonical comparison of two runs.
//
// Usage:
//
//	bctrace summary trace.jsonl
//	bctrace imbalance [-per-worker] trace.jsonl
//	bctrace rounds [-overlap] trace.jsonl
//	bctrace check [-H max-distance] trace.jsonl
//	bctrace diff a.jsonl b.jsonl
//
// summary, imbalance, and rounds stream the trace through
// obs.EventReader, so they handle detail traces far larger than
// memory; check and diff load the whole file (their invariants are
// global).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"time"

	"mrbc/internal/obs"
)

func usage(stderr io.Writer) {
	fmt.Fprint(stderr, `usage: bctrace <command> [flags] <trace.jsonl>

commands:
  summary    per-phase volume totals and encoding-format counts
  imbalance  per-host compute load and the max/mean imbalance ratio
             (-per-worker adds intra-host engine-worker scheduler totals)
  rounds     per-round latency and the critical-path host
             (-overlap adds exchange time vs. time hidden behind
             pipelined compute per round)
  check      verify the Lemma 8 round bounds and reversal symmetry
  diff       compare two traces canonically, report first divergence
`)
}

// realMain is main with its streams injected so the command paths are
// unit-testable; it returns the process exit code (0 ok, 1 failed
// check/diff or bad input, 2 usage).
func realMain(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "summary":
		return streamCmd(rest, stdout, stderr, runSummary)
	case "imbalance":
		return runImbalanceCmd(rest, stdout, stderr)
	case "rounds":
		return runRoundsCmd(rest, stdout, stderr)
	case "check":
		return runCheck(rest, stdout, stderr)
	case "diff":
		return runDiff(rest, stdout, stderr)
	case "-h", "-help", "--help", "help":
		usage(stderr)
		return 0
	default:
		fmt.Fprintf(stderr, "bctrace: unknown command %q\n", cmd)
		usage(stderr)
		return 2
	}
}

// streamCmd opens the single trace argument and feeds it, one event at
// a time, to an accumulating subcommand.
func streamCmd(args []string, stdout, stderr io.Writer, run func(*obs.EventReader, io.Writer) error) int {
	if len(args) != 1 {
		fmt.Fprintln(stderr, "bctrace: expected exactly one trace file")
		return 2
	}
	f, err := os.Open(args[0])
	if err != nil {
		fmt.Fprintln(stderr, "bctrace:", err)
		return 1
	}
	defer f.Close()
	if err := run(obs.NewEventReader(f), stdout); err != nil {
		fmt.Fprintln(stderr, "bctrace:", err)
		return 1
	}
	return 0
}

// drain folds every event of the stream into the given observers.
func drain(er *obs.EventReader, observe func(obs.Event)) (int, error) {
	n := 0
	for {
		e, err := er.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		observe(e)
		n++
	}
}

func runSummary(er *obs.EventReader, out io.Writer) error {
	var t obs.Totals
	n, err := drain(er, t.Observe)
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("trace is empty")
	}
	fmt.Fprintf(out, "events          %d\n", n)
	fmt.Fprintf(out, "pack.bytes      %d\n", t.PackBytes)
	fmt.Fprintf(out, "pack.messages   %d\n", t.PackMessages)
	fmt.Fprintf(out, "unpack.bytes    %d\n", t.UnpackBytes)
	fmt.Fprintf(out, "unpack.messages %d\n", t.UnpackMessages)
	fmt.Fprintf(out, "format.dense    %d\n", t.Dense)
	fmt.Fprintf(out, "format.sparse   %d\n", t.Sparse)
	fmt.Fprintf(out, "format.all      %d\n", t.All)
	if t.Retries+t.FrameBytes+t.AckMessages > 0 {
		fmt.Fprintf(out, "transport.retries       %d\n", t.Retries)
		fmt.Fprintf(out, "transport.retry_bytes   %d\n", t.RetryBytes)
		fmt.Fprintf(out, "transport.frame_bytes   %d\n", t.FrameBytes)
		fmt.Fprintf(out, "transport.ack_messages  %d\n", t.AckMessages)
		fmt.Fprintf(out, "transport.ack_bytes     %d\n", t.AckBytes)
		fmt.Fprintf(out, "transport.max_steps     %d\n", t.MaxSteps)
	}
	if t.PackBytes != t.UnpackBytes || t.PackMessages != t.UnpackMessages {
		return fmt.Errorf("pack/unpack accounting mismatch: sent (%d B, %d msgs) vs received (%d B, %d msgs) — trace is truncated or corrupt",
			t.PackBytes, t.PackMessages, t.UnpackBytes, t.UnpackMessages)
	}
	return nil
}

// formatG renders a float the way strconv's shortest representation
// does, so printed ratios compare exactly against computed ones.
func formatG(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }

// runImbalanceCmd parses imbalance's flags and streams the trace.
func runImbalanceCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bctrace imbalance", flag.ContinueOnError)
	fs.SetOutput(stderr)
	perWorker := fs.Bool("per-worker", false, "additionally report per-(host, worker) engine-scheduler totals from worker events")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	return streamCmd(fs.Args(), stdout, stderr, func(er *obs.EventReader, out io.Writer) error {
		return runImbalance(er, out, *perWorker)
	})
}

func runImbalance(er *obs.EventReader, out io.Writer, perWorker bool) error {
	var a obs.ImbalanceAccum
	var wa obs.WorkerAccum
	if _, err := drain(er, func(e obs.Event) {
		a.Observe(e)
		wa.Observe(e)
	}); err != nil {
		return err
	}
	r := a.Report()
	if r.Phases == 0 {
		return fmt.Errorf("trace carries no compute phases")
	}
	var total int64
	for _, h := range r.PerHost {
		total += h.ComputeNs
	}
	fmt.Fprintf(out, "host  compute        share\n")
	for _, h := range r.PerHost {
		share := float64(h.ComputeNs) / float64(total)
		fmt.Fprintf(out, "%-4d  %-13s  %5.1f%%\n", h.Host, time.Duration(h.ComputeNs), 100*share)
	}
	fmt.Fprintf(out, "phases         %d\n", r.Phases)
	fmt.Fprintf(out, "imbalance.mean %s\n", formatG(r.Mean))
	fmt.Fprintf(out, "imbalance.max  %s\n", formatG(r.MaxRatio))
	if !perWorker {
		return nil
	}
	wr := wa.Report()
	if len(wr.PerWorker) == 0 {
		return fmt.Errorf("trace carries no worker events (recorded without EngineWorkers > 1?)")
	}
	fmt.Fprintf(out, "host  worker  tasks      steals     failed     flushes    batches\n")
	for _, w := range wr.PerWorker {
		fmt.Fprintf(out, "%-4d  %-6d  %-9d  %-9d  %-9d  %-9d  %d\n",
			w.Host, w.Worker, w.Tasks, w.Steals, w.FailedSteals, w.Flushes, w.Batches)
	}
	fmt.Fprintf(out, "worker.max_share %s\n", formatG(wr.MaxShare))
	return nil
}

// runRoundsCmd parses rounds' flags and streams the trace.
func runRoundsCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bctrace rounds", flag.ContinueOnError)
	fs.SetOutput(stderr)
	overlap := fs.Bool("overlap", false, "additionally report per-round exchange time vs. the wait the pipelined exchange hid behind compute")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	return streamCmd(fs.Args(), stdout, stderr, func(er *obs.EventReader, out io.Writer) error {
		return runRounds(er, out, *overlap)
	})
}

func runRounds(er *obs.EventReader, out io.Writer, overlap bool) error {
	var a obs.RoundAccum
	if _, err := drain(er, a.Observe); err != nil {
		return err
	}
	r := a.Report()
	// Phases recorded before the first BeginRound (per-batch setup
	// computes) carry round 0; they are work but not a BSP round, so
	// report them separately and keep the round count aligned with
	// Stats.Rounds.
	if len(r.Rounds) > 0 && r.Rounds[0].Round == 0 {
		setup := r.Rounds[0]
		fmt.Fprintf(out, "setup      %s (outside any round)\n", time.Duration(setup.WallNs))
		if setup.SlowHost >= 0 {
			r.SlowestCount[setup.SlowHost]--
		}
		r.Rounds = r.Rounds[1:]
	}
	if len(r.Rounds) == 0 {
		return fmt.Errorf("trace carries no in-round phase events")
	}
	// Latency histogram over the standard duration buckets.
	counts := make([]int, len(obs.DurationBuckets)+1)
	var totalNs, maxNs int64
	for _, rc := range r.Rounds {
		sec := float64(rc.WallNs) / 1e9
		i := sort.SearchFloat64s(obs.DurationBuckets, sec)
		counts[i]++
		totalNs += rc.WallNs
		if rc.WallNs > maxNs {
			maxNs = rc.WallNs
		}
	}
	fmt.Fprintf(out, "rounds     %d\n", len(r.Rounds))
	fmt.Fprintf(out, "wall.total %s\n", time.Duration(totalNs))
	fmt.Fprintf(out, "wall.mean  %s\n", time.Duration(totalNs/int64(len(r.Rounds))))
	fmt.Fprintf(out, "wall.max   %s\n", time.Duration(maxNs))
	fmt.Fprintln(out, "latency histogram (round wall time):")
	for i, c := range counts {
		if c == 0 {
			continue
		}
		bound := "+Inf"
		if i < len(obs.DurationBuckets) {
			bound = formatG(obs.DurationBuckets[i])
		}
		fmt.Fprintf(out, "  le %-6s %d\n", bound+"s", c)
	}
	// Critical path: which host was slowest, how often.
	hosts := make([]int32, 0, len(r.SlowestCount))
	for h := range r.SlowestCount {
		hosts = append(hosts, h)
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	fmt.Fprintln(out, "critical-path host (rounds slowest):")
	for _, h := range hosts {
		fmt.Fprintf(out, "  host %-4d %d\n", h, r.SlowestCount[h])
	}
	if !overlap {
		return nil
	}
	// Overlap: the exchange wall time each round kept on the critical
	// path vs. the wait the pipelined exchange hid behind other batches'
	// compute (HiddenNs; zero everywhere on non-pipelined traces).
	fmt.Fprintln(out, "round  exchange      hidden        hidden-share")
	var exchNs, hiddenNs int64
	for _, rc := range r.Rounds {
		exchNs += rc.ExchangeNs
		hiddenNs += rc.HiddenNs
		share := 0.0
		if tot := rc.ExchangeNs + rc.HiddenNs; tot > 0 {
			share = float64(rc.HiddenNs) / float64(tot)
		}
		fmt.Fprintf(out, "%-5d  %-12s  %-12s  %5.1f%%\n",
			rc.Round, time.Duration(rc.ExchangeNs), time.Duration(rc.HiddenNs), 100*share)
	}
	fmt.Fprintf(out, "exchange.total %s\n", time.Duration(exchNs))
	fmt.Fprintf(out, "hidden.total   %s\n", time.Duration(hiddenNs))
	eff := 0.0
	if tot := exchNs + hiddenNs; tot > 0 {
		eff = float64(hiddenNs) / float64(tot)
	}
	fmt.Fprintf(out, "overlap.efficiency %s\n", formatG(eff))
	return nil
}

func runCheck(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bctrace check", flag.ContinueOnError)
	fs.SetOutput(stderr)
	h := fs.Int("H", 0, "maximum finite distance from any batched source; 0 infers the weakest consistent value from the trace")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "bctrace: check expects exactly one trace file")
		return 2
	}
	events, ok := loadTrace(fs.Arg(0), stderr)
	if !ok {
		return 1
	}
	bound := *h
	if bound == 0 {
		// Without the graph there is no way to recover H, so infer the
		// weakest value consistent with the trace: the largest recorded
		// forward span. The per-batch 2(k+H)+1 bound then still rejects
		// structural overruns (extra rounds, bogus spans), and the
		// reversal check below is independent of H.
		for _, e := range events {
			if e.Kind == obs.KindBatch && int(e.FwdRounds) > bound {
				bound = int(e.FwdRounds)
			}
		}
		fmt.Fprintf(stdout, "H not given; inferred H=%d from the largest forward span\n", bound)
	}
	if err := obs.CheckRoundBounds(events, bound); err != nil {
		fmt.Fprintln(stderr, "bctrace: round bounds:", err)
		return 1
	}
	fmt.Fprintf(stdout, "round bounds ok (H=%d)\n", bound)
	detail := false
	for _, e := range events {
		if e.Kind == obs.KindSend {
			detail = true
			break
		}
	}
	if !detail {
		fmt.Fprintln(stdout, "reversal skipped (phase-level trace; record with -obs for send events)")
		return 0
	}
	if err := obs.CheckReversal(events); err != nil {
		fmt.Fprintln(stderr, "bctrace: reversal:", err)
		return 1
	}
	fmt.Fprintln(stdout, "reversal symmetry ok")
	return 0
}

func runDiff(args []string, stdout, stderr io.Writer) int {
	if len(args) != 2 {
		fmt.Fprintln(stderr, "bctrace: diff expects exactly two trace files")
		return 2
	}
	a, ok := loadTrace(args[0], stderr)
	if !ok {
		return 1
	}
	b, ok := loadTrace(args[1], stderr)
	if !ok {
		return 1
	}
	d := obs.Diff(a, b)
	if d.Index < 0 {
		fmt.Fprintf(stdout, "traces are canonically identical (%d events)\n", len(obs.Canonical(a)))
		return 0
	}
	fmt.Fprintf(stdout, "traces diverge at canonical event %d:\n", d.Index)
	describe := func(name string, e *obs.Event) {
		if e == nil {
			fmt.Fprintf(stdout, "  %s: <absent — trace ended>\n", name)
			return
		}
		fmt.Fprintf(stdout, "  %s: %+v\n", name, *e)
	}
	describe(args[0], d.A)
	describe(args[1], d.B)
	return 1
}

func loadTrace(path string, stderr io.Writer) ([]obs.Event, bool) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(stderr, "bctrace:", err)
		return nil, false
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		fmt.Fprintln(stderr, "bctrace:", err)
		return nil, false
	}
	return events, true
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}
