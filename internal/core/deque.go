package core

import "sync/atomic"

// wsDeque is a Chase-Lev-style work-stealing deque specialized for the
// round runtime: tasks are shard indices (int32), the owner takes from
// the bottom LIFO, and thieves take from the top via a CAS on top.
//
// The runtime pre-loads every deque before it releases the workers for
// a phase and tasks never spawn subtasks, so push is never concurrent
// with pop or steal and the buffer needs no resizing or garbage
// management — only the classic Chase-Lev arbitration remains: when the
// owner and a thief race for the last element, exactly one wins the CAS
// on top. All slot writes happen before the phase's wake signal, so
// thieves only ever read initialized slots.
type wsDeque struct {
	top    atomic.Int64
	_      [7]int64 // keep top and bottom on separate cache lines
	bottom atomic.Int64
	_      [7]int64
	buf    []int32
}

// reset prepares the deque for a new phase with room for n tasks.
// Owner-only, phase-barrier separated from all pops and steals.
func (d *wsDeque) reset(n int) {
	if cap(d.buf) < n {
		d.buf = make([]int32, n)
	}
	d.buf = d.buf[:cap(d.buf)]
	d.top.Store(0)
	d.bottom.Store(0)
}

// push appends a task at the bottom. Called only between phases (before
// workers wake), never concurrently with pop or steal.
func (d *wsDeque) push(task int32) {
	b := d.bottom.Load()
	d.buf[b] = task
	d.bottom.Store(b + 1)
}

// pop takes the bottom task (owner only). Returns false when the deque
// is empty or a thief won the race for the last element.
func (d *wsDeque) pop() (int32, bool) {
	b := d.bottom.Add(-1)
	t := d.top.Load()
	if t > b {
		// Empty: restore bottom so top <= bottom holds again.
		d.bottom.Store(t)
		return 0, false
	}
	task := d.buf[b]
	if t == b {
		// Last element: race thieves for it via the CAS on top.
		won := d.top.CompareAndSwap(t, t+1)
		d.bottom.Store(t + 1)
		return task, won
	}
	return task, true
}

// steal takes the top task (any worker). Returns false when the deque
// is observed empty; retries internally when it loses a CAS race to
// another thief or the owner.
func (d *wsDeque) steal() (int32, bool) {
	for {
		t := d.top.Load()
		b := d.bottom.Load()
		if t >= b {
			return 0, false
		}
		task := d.buf[t]
		if d.top.CompareAndSwap(t, t+1) {
			return task, true
		}
	}
}

// size reports the number of unclaimed tasks (approximate under
// concurrency; exact between phases).
func (d *wsDeque) size() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}
