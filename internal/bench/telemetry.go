package bench

import "mrbc/internal/obs"

// Telemetry is the registry every experiment's engine runs publish
// into when it is non-nil (bcbench -serve sets it before running and
// exposes it over HTTP). The nil default keeps each run's metrics
// private, exactly as before: engines treat a nil registry as a
// no-op.
var Telemetry *obs.Registry
