// Package obs is the observability layer for the MRBC stack: a
// ring-buffered structured tracer plus a metrics registry, built so the
// disabled path costs nothing (a nil *Trace short-circuits before any
// work, preserving dgalois's zero-allocation Exchange pin) and the
// enabled path allocates nothing per event (fixed-capacity ring of
// value-typed events, atomic cursor).
//
// Traces record one event per (round, host, phase) — compute, pack,
// exchange, unpack, barrier — with byte/message/format/retry counters
// and monotonic timings, and, at LevelDetail, one event per
// (vertex, source) synchronization in each direction. Those send events
// turn the paper's bounds into executable assertions:
//
//   - Lemma 8: every batch of k sources completes within k+H forward
//     rounds and the same again backward (CheckRoundBounds);
//   - Algorithm 5's reversal: a pair synchronized forward in round τ
//     synchronizes backward in round R−τ+1 (CheckReversal).
//
// Event content is a pure function of (graph, seed, options): timings
// and emission order are the only nondeterministic parts, so Canonical
// (sort + strip timings) yields byte-identical traces across worker
// counts, and ModelEvents (drop transport events) yields the identical
// paper-model stream with and without injected faults.
package obs

import (
	"sync/atomic"
)

// Kind classifies an event.
type Kind string

const (
	// KindPhase is one host's slice of a BSP phase (compute, pack,
	// exchange, unpack, barrier), emitted by the cluster substrate.
	KindPhase Kind = "phase"
	// KindSend is one (vertex, source) label synchronization, emitted by
	// the engines at the owning master, only at LevelDetail.
	KindSend Kind = "send"
	// KindBatch summarizes one source batch: k, forward rounds R,
	// backward rounds.
	KindBatch Kind = "batch"
	// KindTransport reports the reliable transport's work for one
	// exchange (retries, framing, acks, delivery steps). Not part of the
	// paper-model stream.
	KindTransport Kind = "transport"
	// KindRound is a CONGEST simulator round (internal/congest).
	KindRound Kind = "round"
	// KindWorker summarizes one intra-host engine worker's scheduler
	// counters for one batch: shard-tasks executed, tasks stolen from
	// other workers' deques, idle sweeps, counter flushes. Like
	// transport events, these are execution artifacts (stealing is
	// timing-dependent), so Canonical and ModelEvents drop them.
	KindWorker Kind = "worker"
	// KindElastic marks checkpoint/restore transitions of the elastic
	// runtime (Phase is PhaseCheckpoint or PhaseRestore, Batch the
	// boundary). Recovery artifacts, not algorithm events: Canonical and
	// ModelEvents drop them, which is what lets a resumed run's
	// canonical trace match the uninterrupted run's byte for byte.
	KindElastic Kind = "elastic"
	// KindHeader is the file-metadata record a trace sink writes as the
	// first JSONL line: Schema carries the trace schema version, Host the
	// writing host (−1 for a merged cluster trace), Hosts the cluster
	// size, Epoch the membership epoch. EventReader recognizes and
	// swallows it (exposed via Header), so headerless pre-schema traces
	// and every existing consumer keep working; Canonical drops it.
	KindHeader Kind = "header"
	// KindLink is one directed (sender, receiver) edge of one exchange:
	// Host is the host the event accounts for, Peer the other endpoint,
	// Phase selects the side (PhasePack = volume Host sent to Peer,
	// PhaseUnpack = volume Host received from Peer), and Seq is the pack
	// seq of the exchange on BOTH sides so a sent link and its received
	// twin share the key (epoch, seq, from, to). Link volume is
	// paper-model volume (post-dedup, exactly-once delivery), so the
	// cross-host conservation checker can demand sent == received
	// exactly; retransmit volume stays on transport events. Canonical
	// drops links to keep the golden fixture stable; ModelEvents keeps
	// them (they are deterministic model content).
	KindLink Kind = "link"
)

// TraceSchema is the JSONL trace schema version this build writes and
// the newest it can read. Version 1 introduced the header record, the
// Origin/Epoch stamps, and link events; headerless traces are
// version 0 and parse as before.
const TraceSchema = 1

// Phase identifies the BSP phase slice of a KindPhase event.
type Phase string

const (
	PhaseCompute  Phase = "compute"
	PhasePack     Phase = "pack"
	PhaseExchange Phase = "exchange"
	PhaseUnpack   Phase = "unpack"
	// PhaseBarrier is the time a host idles at the compute barrier
	// waiting for the slowest host (max duration − own duration).
	PhaseBarrier Phase = "barrier"
	// PhaseCheckpoint/PhaseRestore tag KindElastic events: a boundary
	// snapshot was persisted / a run resumed from one.
	PhaseCheckpoint Phase = "checkpoint"
	PhaseRestore    Phase = "restore"
)

// Direction tags send events.
type Direction string

const (
	DirForward  Direction = "fwd"
	DirBackward Direction = "back"
)

// Event is one trace record. The struct is value-typed and
// fixed-size, so the ring buffer holds events inline and Emit never
// allocates. Zero fields are omitted from JSON; a zero value
// round-trips, so omission loses nothing.
type Event struct {
	Kind Kind `json:"kind"`
	// Seq orders cluster-emitted events (phase, transport): the
	// coordinator assigns it serially per phase dispatch, so it is
	// deterministic across worker counts. Engine-emitted events carry 0.
	Seq int64 `json:"seq,omitempty"`
	// Round: the cluster BSP round for phase/transport events; the
	// batch-relative round for send events; the simulator round for
	// round events.
	Round int32 `json:"round,omitempty"`
	// Batch is the source-batch index for send/batch events.
	Batch int32 `json:"batch,omitempty"`
	// Host: the host of a phase event or the master host of a send
	// event; −1 for cluster-wide events.
	Host  int32     `json:"host,omitempty"`
	Phase Phase     `json:"phase,omitempty"`
	Dir   Direction `json:"dir,omitempty"`
	// V and Src identify the (global vertex, batch-local source) pair of
	// a send event.
	V   int32 `json:"v,omitempty"`
	Src int32 `json:"src,omitempty"`
	// Peer is the other endpoint of a link event: the receiver of a
	// pack-side link, the sender of an unpack-side link.
	Peer int32 `json:"peer,omitempty"`

	// Origin identifies which host's tracer emitted the event, stamped
	// as 1+host so 0 means "unstamped" (in-process runs never stamp and
	// stay byte-identical to pre-schema traces). OriginHost decodes it.
	// Epoch is the membership epoch the event was recorded under;
	// meaningful only when Origin != 0 (SetStamp always sets both) or on
	// header events. Canonical strips both.
	Origin int32 `json:"origin,omitempty"`
	Epoch  int32 `json:"epoch,omitempty"`
	// Schema and Hosts appear only on header events: the trace schema
	// version and the cluster size the trace was recorded under.
	Schema int32 `json:"schema,omitempty"`
	Hosts  int32 `json:"hosts,omitempty"`

	// Batch-event summary: batch size k, forward rounds R (the last
	// forward round with activity), backward rounds.
	K          int32 `json:"k,omitempty"`
	FwdRounds  int32 `json:"fwd_rounds,omitempty"`
	BackRounds int32 `json:"back_rounds,omitempty"`

	// Volume counters (pack/unpack phase events, round events).
	Bytes    int64 `json:"bytes,omitempty"`
	Messages int64 `json:"messages,omitempty"`
	// Per-format message tallies of a pack event.
	Dense  int64 `json:"dense,omitempty"`
	Sparse int64 `json:"sparse,omitempty"`
	All    int64 `json:"all,omitempty"`

	// Intra-host worker-scheduler counters (worker events): Worker is
	// the worker index within Host's engine pool; Tasks/Steals/
	// FailedSteals/Flushes mirror core.WorkerStats for one batch.
	Worker       int32 `json:"worker,omitempty"`
	Tasks        int64 `json:"tasks,omitempty"`
	Steals       int64 `json:"steals,omitempty"`
	FailedSteals int64 `json:"failed_steals,omitempty"`
	Flushes      int64 `json:"flushes,omitempty"`

	// Reliable-transport counters (transport events): deltas for one
	// exchange.
	Retries     int64 `json:"retries,omitempty"`
	RetryBytes  int64 `json:"retry_bytes,omitempty"`
	FrameBytes  int64 `json:"frame_bytes,omitempty"`
	AckMessages int64 `json:"ack_messages,omitempty"`
	AckBytes    int64 `json:"ack_bytes,omitempty"`
	Steps       int64 `json:"steps,omitempty"`
	Injected    int64 `json:"injected,omitempty"`
	Stalled     int64 `json:"stalled,omitempty"`
	// Backend labels a transport event with the gluon backend that moved
	// the bytes ("tcp"). Empty — and therefore omitted, keeping the
	// in-process canonical trace byte-identical — for the simulated
	// in-process network.
	Backend string `json:"backend,omitempty"`
	// Redials counts connection re-establishments (remote backends).
	Redials int64 `json:"redials,omitempty"`

	// Monotonic timings, nanoseconds since the trace/cluster epoch.
	// Stripped by Canonical: wall time is the one nondeterministic
	// field an event carries. HiddenNs, on exchange phase events, is
	// the slice of the exchange's wire wait that elapsed between
	// BeginExchange and Complete — time the pipeline hid behind
	// compute (always 0 on synchronous exchanges).
	StartNs  int64 `json:"start_ns,omitempty"`
	DurNs    int64 `json:"dur_ns,omitempty"`
	HiddenNs int64 `json:"hidden_ns,omitempty"`
}

// OriginHost decodes the Origin stamp: the emitting host index, or −1
// when the event is unstamped (single-process run or pre-schema trace).
func (e Event) OriginHost() int {
	if e.Origin == 0 {
		return -1
	}
	return int(e.Origin) - 1
}

// Header builds the version-1 header record for host (−1 for a merged
// cluster trace) in an n-host cluster at the given membership epoch.
func Header(host, hosts, epoch int) Event {
	return Event{Kind: KindHeader, Schema: TraceSchema,
		Host: int32(host), Hosts: int32(hosts), Epoch: int32(epoch)}
}

// Level selects how much a Trace records.
type Level int

const (
	// LevelPhase records cluster phase, batch, transport, and round
	// events — O(hosts) per BSP phase.
	LevelPhase Level = iota
	// LevelDetail additionally records per-(vertex, source) send events —
	// what the bound checkers consume.
	LevelDetail
)

// Trace is a fixed-capacity ring of events. A nil *Trace is the
// disabled tracer: every method is safe to call and does nothing, so
// call sites need no guards beyond the pointer test the compiler can
// hoist. Emit is safe for concurrent use; once the ring wraps, the
// oldest events are overwritten (Dropped reports how many).
type Trace struct {
	events []Event
	next   atomic.Int64
	level  Level
	// origin/epoch, when origin != 0, are stamped onto every emitted
	// event (SetStamp). Set before the first Emit; read-only after.
	origin int32
	epoch  int32
	// tee, when non-nil, receives a copy of every emitted event
	// (SetTee). The send is a value copy into the channel's buffer —
	// no allocation — and blocks when the consumer falls behind, so a
	// streaming sink never silently drops events the ring would keep.
	tee chan<- Event
}

// DefaultCapacity is the ring size NewTrace uses for capacity <= 0.
const DefaultCapacity = 1 << 15

// NewTrace allocates a trace ring. Capacity is rounded up to 1;
// capacity <= 0 selects DefaultCapacity.
func NewTrace(capacity int, level Level) *Trace {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Trace{events: make([]Event, capacity), level: level}
}

// Enabled reports whether the trace records anything (false for nil).
func (t *Trace) Enabled() bool { return t != nil }

// Detail reports whether per-(vertex, source) send events should be
// emitted (false for nil).
func (t *Trace) Detail() bool { return t != nil && t.level >= LevelDetail }

// SetStamp makes every subsequently emitted event carry the host index
// and membership epoch (Origin = 1+host, so host identity survives
// merging N hosts' files into one stream). Call before the run starts;
// Emit reads the stamp without synchronization.
func (t *Trace) SetStamp(host, epoch int) {
	if t == nil {
		return
	}
	t.origin = int32(host) + 1
	t.epoch = int32(epoch)
}

// SetTee attaches (or, with nil, detaches) a channel that receives a
// copy of every emitted event, for streaming sinks that must survive
// the process (StreamSink). Call before the run starts; pass a
// buffered channel sized for the burstiness you can absorb — Emit
// blocks when it fills rather than dropping.
func (t *Trace) SetTee(ch chan<- Event) {
	if t == nil {
		return
	}
	t.tee = ch
}

// Emit appends an event to the ring. No-op on a nil trace; never
// allocates on a non-nil one (stamping mutates the value copy, the tee
// copies it into channel storage).
func (t *Trace) Emit(e Event) {
	if t == nil {
		return
	}
	if t.origin != 0 && e.Origin == 0 {
		e.Origin = t.origin
		e.Epoch = t.epoch
	}
	i := t.next.Add(1) - 1
	t.events[i%int64(len(t.events))] = e
	if t.tee != nil {
		t.tee <- e
	}
}

// Emitted returns the total number of events emitted (including any
// overwritten after the ring wrapped).
func (t *Trace) Emitted() int64 {
	if t == nil {
		return 0
	}
	return t.next.Load()
}

// Dropped returns how many events were overwritten by ring wraparound.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	if n := t.next.Load() - int64(len(t.events)); n > 0 {
		return n
	}
	return 0
}

// Cap returns the ring capacity.
func (t *Trace) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Reset discards all recorded events, keeping the ring storage. Not
// safe to call concurrently with Emit.
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	t.next.Store(0)
}

// Events returns the retained events in emission order (oldest first).
// Must not race with Emit.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	n := t.next.Load()
	c := int64(len(t.events))
	if n <= c {
		return append([]Event(nil), t.events[:n]...)
	}
	start := n % c
	out := make([]Event, 0, c)
	out = append(out, t.events[start:]...)
	return append(out, t.events[:start]...)
}
