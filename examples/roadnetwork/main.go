// Road-network analysis: betweenness on a high-diameter graph — the
// regime where the paper's §5.3 findings are most visible. Bulk-
// synchronous algorithms pay one round per BFS level, so a road
// network with diameter in the hundreds forces SBBC through thousands
// of rounds per source; MRBC's pipelining collapses them, and the
// asynchronous ABBC avoids rounds entirely.
package main

import (
	"fmt"
	"log"

	"mrbc"
)

func main() {
	// A 100x100 road grid with a sprinkle of highways, like the
	// paper's road-europe stand-in. Vertices with high betweenness are
	// the arteries every detour-free route crosses.
	g := mrbc.GenerateRoadGrid(100, 100, 7)
	fmt.Printf("road network: %d intersections, %d road segments\n",
		g.NumVertices(), g.NumEdges())

	sources := mrbc.Sources(g, 0, 8)

	fmt.Println("\ncritical intersections (highest betweenness):")
	res, err := mrbc.Betweenness(g, sources, mrbc.Options{Algorithm: mrbc.ABBC, ChunkSize: 64})
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range mrbc.TopK(res.Scores, 5) {
		row, col := r.Vertex/100, r.Vertex%100
		fmt.Printf("  #%d intersection (%2d,%2d)  score %10.1f\n", i+1, row, col, r.Score)
	}

	// The §5.3 comparison: per-source round counts on 4 hosts.
	fmt.Println("\nround counts on 4 simulated hosts:")
	sb, err := mrbc.Betweenness(g, sources, mrbc.Options{Algorithm: mrbc.SBBC, Hosts: 4})
	if err != nil {
		log.Fatal(err)
	}
	mr, err := mrbc.Betweenness(g, sources, mrbc.Options{Algorithm: mrbc.MRBC, Hosts: 4, BatchSize: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  SBBC: %6d rounds (%.0f per source) — one per BFS level, each way\n",
		sb.Rounds, float64(sb.Rounds)/float64(len(sources)))
	fmt.Printf("  MRBC: %6d rounds (%.0f per source) — k+H pipelined per batch\n",
		mr.Rounds, float64(mr.Rounds)/float64(len(sources)))
	fmt.Printf("  round reduction: %.1fx (paper reports 14.0x on average, more on roads)\n",
		float64(sb.Rounds)/float64(mr.Rounds))
	fmt.Printf("  communication:   SBBC %d KB vs MRBC %d KB\n", sb.Bytes/1024, mr.Bytes/1024)
}
