// Package gluon implements the communication substrate the paper's
// implementation is built on (Dathathri et al., PLDI'18), specialized
// to what the BC algorithms need:
//
//   - the proxy topology: for every ordered host pair, the list of
//     vertices with a proxy on the sender whose master is on the
//     receiver (reduce direction) and vice versa (broadcast direction);
//   - update tracking with compressed metadata: a sync message marks
//     which proxies of the pair's shared-vertex list carry updates,
//     followed by one payload per marked proxy. The metadata encoding
//     is density-adaptive ("Gluon ... compresses the metadata that
//     identifies the proxies whose labels are sent", §4.1/§5.3): a
//     dense bitvector when many proxies updated, a varint-delta index
//     list when few did, and no metadata at all when every proxy did.
//     EncodeUpdates picks the smallest encoding per message;
//     DecodeUpdates dispatches on a one-byte format header.
//   - reduce (mirrors -> master) followed by broadcast (master ->
//     mirrors), the all-reduce pattern of §4.1.
//
// Payload encoding is left to the caller via Writer/Reader so each
// algorithm serializes exactly the fields it synchronizes. Writers and
// Decoders are reusable: the exchange substrate (internal/dgalois)
// keeps one Writer per ordered host pair and one Decoder per receiving
// host, so steady-state synchronization allocates nothing.
package gluon

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"mrbc/internal/bitset"
	"mrbc/internal/partition"
)

// Topology precomputes, for a partitioning, the shared-vertex lists
// every ordered host pair synchronizes over.
type Topology struct {
	pt *partition.Partitioning
	// mirrorsByMaster[a][b]: local IDs (on host a) of proxies whose
	// master is host b, ascending; empty when a == b.
	mirrorsByMaster [][][]uint32
	// masterSide[a][b]: local IDs (on host b's MASTER side) matching
	// mirrorsByMaster[a][b] entry-for-entry, i.e., the same vertices
	// translated to host b's local IDs.
	masterSide [][][]uint32
}

// NewTopology builds the proxy topology for a partitioning.
func NewTopology(pt *partition.Partitioning) *Topology {
	t := &Topology{pt: pt}
	h := pt.NumHosts
	t.mirrorsByMaster = make([][][]uint32, h)
	t.masterSide = make([][][]uint32, h)
	for a := 0; a < h; a++ {
		t.mirrorsByMaster[a] = make([][]uint32, h)
		t.masterSide[a] = make([][]uint32, h)
	}
	for a, p := range pt.Parts {
		for l, gid := range p.GlobalID {
			m := int(pt.MasterOf[gid])
			if m == a {
				continue
			}
			ml, ok := pt.Parts[m].LocalID(gid)
			if !ok {
				panic(fmt.Sprintf("gluon: master host %d lacks proxy for vertex %d", m, gid))
			}
			t.mirrorsByMaster[a][m] = append(t.mirrorsByMaster[a][m], uint32(l))
			t.masterSide[a][m] = append(t.masterSide[a][m], ml)
		}
	}
	return t
}

// MirrorList returns the local IDs on host a of the proxies mastered
// by host b (the reduce-direction shared list). The returned slice
// must not be modified.
func (t *Topology) MirrorList(a, b int) []uint32 { return t.mirrorsByMaster[a][b] }

// MasterList returns the host-b local IDs matching MirrorList(a, b)
// entry for entry.
func (t *Topology) MasterList(a, b int) []uint32 { return t.masterSide[a][b] }

// Partitioning returns the underlying partitioning.
func (t *Topology) Partitioning() *partition.Partitioning { return t.pt }

// Format identifies a sync-metadata encoding. FormatAuto is the
// default (and the Writer zero value): EncodeUpdates picks the
// smallest encoding per message. The other values double as the wire
// header byte.
type Format byte

const (
	// FormatAuto selects per message the encoding with the smallest
	// metadata; it never appears on the wire.
	FormatAuto Format = iota
	// FormatDense is the seed wire format plus the header byte: a full
	// bitvector over the shared list. Smallest when marked density is
	// high.
	FormatDense
	// FormatSparse is a count followed by varint-delta-encoded marked
	// positions. Smallest when few proxies updated.
	FormatSparse
	// FormatAll carries no metadata: every position of the shared list
	// is marked. Only valid — and automatically chosen — when the
	// update set is the whole list.
	FormatAll
)

func (f Format) String() string {
	switch f {
	case FormatAuto:
		return "auto"
	case FormatDense:
		return "dense"
	case FormatSparse:
		return "sparse"
	case FormatAll:
		return "all"
	}
	return fmt.Sprintf("Format(%d)", byte(f))
}

// EncodingCounts tallies sync messages by wire format.
type EncodingCounts struct {
	Dense  int64 `json:"dense"`
	Sparse int64 `json:"sparse"`
	All    int64 `json:"all"`
}

// Add accumulates o into c.
func (c *EncodingCounts) Add(o EncodingCounts) {
	c.Dense += o.Dense
	c.Sparse += o.Sparse
	c.All += o.All
}

// Total returns the number of messages across all formats.
func (c EncodingCounts) Total() int64 { return c.Dense + c.Sparse + c.All }

// ByteCounts tallies sync-message bytes (header + metadata + payload)
// by wire format — the byte-level companion of EncodingCounts, surfaced
// through the dgalois metrics registry.
type ByteCounts struct {
	Dense  int64 `json:"dense"`
	Sparse int64 `json:"sparse"`
	All    int64 `json:"all"`
}

// Add accumulates o into c.
func (c *ByteCounts) Add(o ByteCounts) {
	c.Dense += o.Dense
	c.Sparse += o.Sparse
	c.All += o.All
}

// Total returns the byte count across all formats.
func (c ByteCounts) Total() int64 { return c.Dense + c.Sparse + c.All }

// Writer serializes payloads into a sync buffer. The zero value is
// ready to use; Reset lets one Writer serve many messages without
// reallocating, and Scratch hands out a reusable marked-bitvector so
// the pack path of an exchange allocates nothing at steady state.
type Writer struct {
	buf   []byte
	force Format // FormatAuto: adaptive selection

	counts     EncodingCounts
	byteCounts ByteCounts

	scratchWords []uint64
	scratch      bitset.Set
}

// Bytes returns the accumulated buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the accumulated byte count.
func (w *Writer) Len() int { return len(w.buf) }

// Reset empties the buffer, keeping its capacity (and the format
// counters, which TakeCounts drains).
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// ForceFormat pins the metadata encoding EncodeUpdates uses through
// this writer (FormatAuto restores adaptive selection). Forcing
// FormatAll panics inside EncodeUpdates unless every position is
// marked. Used to reproduce the seed dense-only volume in ablations.
func (w *Writer) ForceFormat(f Format) { w.force = f }

// TakeCounts returns the per-format message tallies accumulated since
// the last call, and zeroes them.
func (w *Writer) TakeCounts() EncodingCounts {
	c := w.counts
	w.counts = EncodingCounts{}
	return c
}

// TakeByteCounts returns the per-format byte tallies (full message
// size: header, metadata, and payload) accumulated since the last
// call, and zeroes them.
func (w *Writer) TakeByteCounts() ByteCounts {
	c := w.byteCounts
	w.byteCounts = ByteCounts{}
	return c
}

// Scratch returns an empty bit set of capacity n backed by
// writer-owned storage, for building the marked set of an update
// message without allocating. The set stays valid until the next
// Scratch call on the same writer.
func (w *Writer) Scratch(n int) *bitset.Set {
	nw := bitset.WordsFor(n)
	if cap(w.scratchWords) < nw {
		w.scratchWords = make([]uint64, nw)
	}
	ws := w.scratchWords[:nw]
	for i := range ws {
		ws[i] = 0
	}
	w.scratch = bitset.FromWords(ws, n)
	return &w.scratch
}

// U32 appends a uint32.
func (w *Writer) U32(x uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], x)
	w.buf = append(w.buf, b[:]...)
}

// U64 appends a uint64.
func (w *Writer) U64(x uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], x)
	w.buf = append(w.buf, b[:]...)
}

// F64 appends a float64.
func (w *Writer) F64(x float64) { w.U64(math.Float64bits(x)) }

// Byte appends a single byte.
func (w *Writer) Byte(x byte) { w.buf = append(w.buf, x) }

// Raw appends arbitrary bytes.
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Uvarint appends x in unsigned varint encoding.
func (w *Writer) Uvarint(x uint64) { w.buf = binary.AppendUvarint(w.buf, x) }

// Reader deserializes a sync buffer.
type Reader struct {
	buf []byte
	off int
}

// NewReader wraps a buffer.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Reset points the reader at a new buffer.
func (r *Reader) Reset(b []byte) { r.buf, r.off = b, 0 }

// U32 reads a uint32.
func (r *Reader) U32() uint32 {
	if r.off+4 > len(r.buf) {
		panic("gluon: truncated sync buffer")
	}
	x := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return x
}

// U64 reads a uint64.
func (r *Reader) U64() uint64 {
	if r.off+8 > len(r.buf) {
		panic("gluon: truncated sync buffer")
	}
	x := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return x
}

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Byte reads a single byte.
func (r *Reader) Byte() byte {
	if r.off >= len(r.buf) {
		panic("gluon: truncated sync buffer")
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		panic("gluon: truncated or overlong varint in sync buffer")
	}
	r.off += n
	return v
}

// bytesN returns the next n bytes as a sub-slice and advances.
func (r *Reader) bytesN(n int) []byte {
	if n < 0 || r.off+n > len(r.buf) {
		panic("gluon: truncated sync buffer")
	}
	s := r.buf[r.off : r.off+n]
	r.off += n
	return s
}

// Remaining reports the unread byte count.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// uvarintLen returns the encoded size of x in bytes.
func uvarintLen(x uint64) int { return (bits.Len64(x|1) + 6) / 7 }

// sparseMetaLen returns the byte cost of the sparse position metadata
// (count field + varint-delta positions) using word-skipping iteration,
// so near-empty update sets over long lists are costed in O(set bits).
func sparseMetaLen(marked *bitset.Set) int {
	n := 4 // u32 count
	prev := -1
	for pos, ok := marked.NextSet(0); ok; pos, ok = marked.NextSet(pos + 1) {
		if prev < 0 {
			n += uvarintLen(uint64(pos))
		} else {
			n += uvarintLen(uint64(pos - prev - 1))
		}
		prev = pos
	}
	return n
}

// EncodeUpdates appends a sync message over a shared list of listLen
// proxies to w: a one-byte format header, the list length, the marked
// positions in the smallest of the three metadata encodings (or the
// writer's forced format), then each marked position's payload in
// ascending order (written by the emit callback). Nothing is appended
// when no positions are marked, so the caller sends nothing — Gluon
// "avoids resending labels that have not been updated".
//
// Selection rule: all-marked ships zero metadata; otherwise the sparse
// index list wins exactly when its varint positions are smaller than
// the ⌈listLen/64⌉ dense bitvector words, which for 4-byte-plus
// deltas means marked density below roughly 1/5th of a bit per
// position. The payload bytes are identical across formats, so
// comparing metadata sizes alone picks the smallest message.
func EncodeUpdates(w *Writer, listLen int, marked *bitset.Set, emit func(pos int, w *Writer)) {
	if marked.None() {
		return
	}
	if marked.Len() != listLen {
		panic("gluon: marked bitvector does not match shared list length")
	}
	count := marked.Count()
	startLen := w.Len()
	f := w.force
	if f == FormatAuto {
		if count == listLen {
			f = FormatAll
		} else if sparseMetaLen(marked) < 8*bitset.WordsFor(listLen) {
			f = FormatSparse
		} else {
			f = FormatDense
		}
	}
	w.Byte(byte(f))
	w.U32(uint32(listLen))
	switch f {
	case FormatDense:
		for _, word := range marked.Words() {
			w.U64(word)
		}
		w.counts.Dense++
	case FormatSparse:
		w.U32(uint32(count))
		prev := -1
		for pos, ok := marked.NextSet(0); ok; pos, ok = marked.NextSet(pos + 1) {
			if prev < 0 {
				w.Uvarint(uint64(pos))
			} else {
				w.Uvarint(uint64(pos - prev - 1))
			}
			prev = pos
		}
		w.counts.Sparse++
	case FormatAll:
		if count != listLen {
			panic("gluon: all-marked format forced with unmarked positions")
		}
		w.counts.All++
	default:
		panic(fmt.Sprintf("gluon: cannot encode with format %v", f))
	}
	marked.ForEach(func(pos int) bool {
		emit(pos, w)
		return true
	})
	size := int64(w.Len() - startLen)
	switch f {
	case FormatDense:
		w.byteCounts.Dense += size
	case FormatSparse:
		w.byteCounts.Sparse += size
	case FormatAll:
		w.byteCounts.All += size
	}
}

// Decoder parses sync messages. It owns the reader scratch handed to
// apply callbacks, so one Decoder per receiving host makes the decode
// path allocation-free. The zero value is ready to use.
type Decoder struct {
	rd     Reader
	counts EncodingCounts
}

// NewDecoder returns a reusable decoder.
func NewDecoder() *Decoder { return &Decoder{} }

// TakeCounts returns how many messages of each wire format the decoder
// parsed since the last call, and resets the tallies — the receive-side
// mirror of Writer.TakeCounts, letting the cross-host conservation
// checker match per-encoding message counts sender against receiver.
func (d *Decoder) TakeCounts() EncodingCounts {
	c := d.counts
	d.counts = EncodingCounts{}
	return c
}

// DecodeUpdates parses a message produced by EncodeUpdates over the
// same shared list, dispatching on the format header and calling apply
// for every marked position in ascending order. Malformed input —
// unknown header, length mismatch, positions beyond the list,
// non-ascending positions, truncation (including mid-varint), trailing
// bytes — panics with a gluon-prefixed message, mirroring the seed
// decoder's convention; it never reads out of bounds. (On the fault
// path the frame checksum vouches for the payload before it gets
// here, so a panic indicates a substrate bug, not line noise.)
func (d *Decoder) DecodeUpdates(listLen int, data []byte, apply func(pos int, r *Reader)) {
	rd := &d.rd
	rd.Reset(data)
	f := Format(rd.Byte())
	if got := int(rd.U32()); got != listLen {
		panic(fmt.Sprintf("gluon: shared list length mismatch: message %d, local %d", got, listLen))
	}
	applied := 0
	switch f {
	case FormatDense:
		nw := bitset.WordsFor(listLen)
		words := rd.bytesN(8 * nw)
		for i := 0; i < nw; i++ {
			word := binary.LittleEndian.Uint64(words[8*i:])
			base := i * 64
			for word != 0 {
				pos := base + bits.TrailingZeros64(word)
				if pos >= listLen {
					panic(fmt.Sprintf("gluon: dense metadata marks position %d beyond shared list length %d", pos, listLen))
				}
				apply(pos, rd)
				applied++
				word &= word - 1
			}
		}
	case FormatSparse:
		count := int(rd.U32())
		if count <= 0 || count > listLen {
			panic(fmt.Sprintf("gluon: sparse metadata declares %d positions over a %d-entry shared list", count, listLen))
		}
		// Pass 1: validate the varint block (bounds, monotonicity) and
		// find where the payloads start.
		varStart := rd.off
		pos := -1
		for i := 0; i < count; i++ {
			v := rd.Uvarint()
			if v >= uint64(listLen) {
				panic(fmt.Sprintf("gluon: sparse position delta %d beyond shared list length %d", v, listLen))
			}
			if pos < 0 {
				pos = int(v)
			} else {
				pos += int(v) + 1
			}
			if pos >= listLen {
				panic(fmt.Sprintf("gluon: sparse metadata marks position %d beyond shared list length %d", pos, listLen))
			}
		}
		// Pass 2: re-walk the validated varints interleaved with the
		// payloads.
		vi := varStart
		pos = -1
		for i := 0; i < count; i++ {
			v, n := binary.Uvarint(data[vi:])
			vi += n
			if pos < 0 {
				pos = int(v)
			} else {
				pos += int(v) + 1
			}
			apply(pos, rd)
		}
		applied = count
	case FormatAll:
		for pos := 0; pos < listLen; pos++ {
			apply(pos, rd)
		}
		applied = listLen
	default:
		panic(fmt.Sprintf("gluon: unknown sync format header %d", byte(f)))
	}
	if applied == 0 {
		panic("gluon: sync message marks no positions (empty messages must not be sent)")
	}
	if rd.Remaining() != 0 {
		panic(fmt.Sprintf("gluon: %d trailing bytes in sync buffer", rd.Remaining()))
	}
	switch f {
	case FormatDense:
		d.counts.Dense++
	case FormatSparse:
		d.counts.Sparse++
	case FormatAll:
		d.counts.All++
	}
}

// DecodeUpdates is the convenience form for callers without a pooled
// Decoder (tests, one-shot tools).
func DecodeUpdates(listLen int, data []byte, apply func(pos int, r *Reader)) {
	var d Decoder
	d.DecodeUpdates(listLen, data, apply)
}
