// Package core implements Min-Rounds BC (MRBC), the paper's primary
// contribution, in two forms:
//
//   - An exact CONGEST-model implementation of Algorithms 3
//     (Directed-APSP), 4 (APSP-Finalizer), and 5 (BC accumulation),
//     whose round and message counts are validated against Theorem 1,
//     Lemma 6, and Lemma 8 by the package tests.
//   - A batched shared-memory engine (engine.go) implementing the
//     D-Galois data-structure optimizations of Section 4.3 (the dense
//     per-source array Av and the flat sorted distance map Mv), reused
//     by the distributed implementation in internal/mrbcdist.
//
// This file contains the CONGEST implementation.
package core

import (
	"fmt"
	"sort"

	"mrbc/internal/congest"
	"mrbc/internal/graph"
)

// TerminationMode selects how the CONGEST APSP execution terminates,
// matching the three cases of Theorem 1.
type TerminationMode int

const (
	// ModeFixed2N runs exactly 2n rounds with no extra machinery
	// (Theorem 1 part I.2: 2n rounds, at most mn messages).
	ModeFixed2N TerminationMode = iota
	// ModeFinalizer runs Algorithm 4 alongside Algorithm 3: a BFS tree
	// aggregates the diameter, which is broadcast to stop execution in
	// min(2n, n+5D) rounds (Theorem 1 part I.1 / Lemma 6). Requires a
	// strongly connected graph to beat 2n.
	ModeFinalizer
	// ModeQuiesce uses global termination detection as the D-Galois
	// implementation does (Lemma 8): execution stops at the end of the
	// first round in which no message is sent and every entry has been
	// transmitted. With k sources this yields at most k+H rounds (+1
	// detection round), where H is the largest finite distance from
	// the sources.
	ModeQuiesce
)

// listEntry is one (distance, source) pair of the ordered list Lv.
// Entries compare lexicographically: by distance, then by source ID.
type listEntry struct {
	d uint32
	s uint32 // source vertex ID (not compact index)
}

func entryLess(a, b listEntry) bool {
	if a.d != b.d {
		return a.d < b.d
	}
	return a.s < b.s
}

// apspMsg is the forward-phase message (dsv, s, σsv) of Algorithm 3.
type apspMsg struct {
	d     uint32
	s     uint32
	sigma float64
}

// accMsg is the backward-phase message of Algorithm 5, carrying
// (1 + δs•(w)) / σsw for source s.
type accMsg struct {
	s uint32
	m float64
}

// Finalizer (Algorithm 4) message types.
type bfsExplore struct{}
type bfsChild struct{}
type finMax struct{ d uint32 }
type finDiam struct{ d uint32 }

// n-computation message types (Step 5-6 of Algorithm 3, used when n is
// not known): subtree counts converge up the BFS tree, and the total
// broadcasts back down.
type cntReport struct{ c uint32 }
type nBcast struct{ n uint32 }

type phase int

const (
	phaseForward phase = iota
	phaseBackward
)

// bcNode is the per-vertex state machine for Algorithms 3, 4, and 5.
type bcNode struct {
	id    uint32
	out   []uint32 // Γout in G
	nbrs  []uint32 // neighbors in UG (channels)
	nAll  int      // n, number of vertices (known to all nodes)
	srcIx map[uint32]int

	mode TerminationMode
	ph   phase

	// Algorithm 3 state. Per-source slices are indexed by compact
	// source index.
	list      []listEntry
	dist      []uint32
	sigma     []float64
	preds     [][]uint32
	tau       []int // round the forward message for source s was sent
	sent      []bool
	sentCount int

	// Algorithm 4 state.
	bfsDepth    int // -1 until reached
	bfsParent   uint32
	bfsChildren []uint32
	bfsForward  bool // must broadcast explore next round
	bfsAckOwed  bool // must send bfsChild to parent next round
	childMax    []uint32
	fv          bool   // the flag fv of Algorithm 4: steps 3-9 ran
	diameter    uint32 // broadcast network diameter; InfDist until known
	diamForward bool   // must forward finDiam next round
	stopped     bool

	// n-computation state (Steps 5-6 of Algorithm 3). When nAll starts
	// at 0 the node must learn n through the BFS-tree convergecast
	// before the Algorithm 4 conditions involving |Lv| = n can fire.
	childCounts []uint32
	cntSent     bool
	nForward    bool // must forward the nBcast next round

	// revSrc maps compact source index -> source vertex ID.
	revSrc []uint32

	// Algorithm 5 state.
	delta    []float64
	totalR   int // R: termination round of the forward phase
	accDone  int // how many sources have sent their accumulation message
	accOrder []accSlot
}

type accSlot struct {
	round int // Asv
	six   int // compact source index
}

func (nd *bcNode) Send(r int, send func(uint32, any)) {
	if nd.ph == phaseBackward {
		nd.sendBackward(r, send)
		return
	}
	if nd.stopped {
		return
	}
	// Algorithm 4 runs in parallel with Algorithm 3 (Step 1 of Alg 3).
	if nd.mode == ModeFinalizer {
		nd.sendFinalizer(r, send)
		if nd.stopped {
			return
		}
	}
	// Step 8-9 of Algorithm 3: send the entry whose scheduled round is
	// r. Scheduled rounds d + position are strictly increasing along
	// the list, so binary search finds the unique candidate.
	i := sort.Search(len(nd.list), func(i int) bool {
		return int(nd.list[i].d)+i+1 >= r
	})
	if i >= len(nd.list) || int(nd.list[i].d)+i+1 != r {
		return
	}
	e := nd.list[i]
	six := nd.srcIx[e.s]
	if nd.sent[six] {
		return
	}
	nd.sent[six] = true
	nd.sentCount++
	nd.tau[six] = r
	msg := apspMsg{d: e.d, s: e.s, sigma: nd.sigma[six]}
	for _, w := range nd.out {
		send(w, msg)
	}
}

func (nd *bcNode) Receive(r int, inbox []congest.Delivery) {
	if nd.ph == phaseBackward {
		nd.receiveBackward(inbox)
		return
	}
	for _, dl := range inbox {
		switch m := dl.Payload.(type) {
		case apspMsg:
			nd.relax(dl.From, m)
		case bfsExplore:
			if nd.bfsDepth < 0 {
				nd.bfsDepth = r
				nd.bfsParent = dl.From
				nd.bfsForward = true
				nd.bfsAckOwed = true
			}
		case bfsChild:
			nd.bfsChildren = append(nd.bfsChildren, dl.From)
		case finMax:
			nd.childMax = append(nd.childMax, m.d)
		case finDiam:
			if nd.diameter == graph.InfDist {
				nd.diameter = m.d
				nd.diamForward = true
			}
		case cntReport:
			nd.childCounts = append(nd.childCounts, m.c)
		case nBcast:
			if nd.nAll == 0 {
				nd.nAll = int(m.n)
				nd.nForward = true
			}
		default:
			panic(fmt.Sprintf("core: vertex %d: unexpected message %T", nd.id, dl.Payload))
		}
	}
}

// relax implements Steps 11-17 of Algorithm 3.
func (nd *bcNode) relax(from uint32, m apspMsg) {
	six, ok := nd.srcIx[m.s]
	if !ok {
		panic(fmt.Sprintf("core: vertex %d: message for unknown source %d", nd.id, m.s))
	}
	cand := m.d + 1
	cur := nd.dist[six]
	switch {
	case cur == graph.InfDist:
		// Step 12-13: no entry yet; insert.
		nd.insertEntry(listEntry{d: cand, s: m.s})
		nd.dist[six] = cand
		nd.sigma[six] = m.sigma
		nd.preds[six] = append(nd.preds[six][:0], from)
	case cur == cand:
		// Step 14-15: another shortest path.
		nd.sigma[six] += m.sigma
		nd.preds[six] = append(nd.preds[six], from)
	case cur > cand:
		// Step 16-17: strictly better distance; replace.
		if nd.sent[six] {
			// Lemma 4 guarantees sent distances are final; a violation
			// means the pipelining invariant broke.
			panic(fmt.Sprintf("core: vertex %d: improvement for source %d after send", nd.id, m.s))
		}
		nd.removeEntry(listEntry{d: cur, s: m.s})
		nd.insertEntry(listEntry{d: cand, s: m.s})
		nd.dist[six] = cand
		nd.sigma[six] = m.sigma
		nd.preds[six] = append(nd.preds[six][:0], from)
	}
}

func (nd *bcNode) insertEntry(e listEntry) {
	i := sort.Search(len(nd.list), func(i int) bool { return !entryLess(nd.list[i], e) })
	nd.list = append(nd.list, listEntry{})
	copy(nd.list[i+1:], nd.list[i:])
	nd.list[i] = e
}

func (nd *bcNode) removeEntry(e listEntry) {
	i := sort.Search(len(nd.list), func(i int) bool { return !entryLess(nd.list[i], e) })
	if i >= len(nd.list) || nd.list[i] != e {
		panic(fmt.Sprintf("core: vertex %d: entry (%d,%d) not found", nd.id, e.d, e.s))
	}
	nd.list = append(nd.list[:i], nd.list[i+1:]...)
}

// sendFinalizer implements Algorithm 4 plus the BFS-tree construction
// of Step 1 of Algorithm 3. The BFS tree is built over the channels
// (UG) rooted at vertex 0 (the smallest ID, the paper's v1).
func (nd *bcNode) sendFinalizer(r int, send func(uint32, any)) {
	// BFS tree construction.
	if nd.id == 0 && r == 1 {
		nd.bfsDepth = 0
		nd.bfsParent = nd.id
		for _, w := range nd.nbrs {
			send(w, bfsExplore{})
		}
	}
	if nd.bfsForward {
		nd.bfsForward = false
		if nd.bfsAckOwed {
			nd.bfsAckOwed = false
			send(nd.bfsParent, bfsChild{})
		}
		for _, w := range nd.nbrs {
			if w != nd.bfsParent {
				send(w, bfsExplore{})
			}
		}
	}
	// Steps 5-6 of Algorithm 3 (n unknown): convergecast subtree counts
	// up the BFS tree, then broadcast n back down. Children sets are
	// final after round depth+2 (see below), so the count can only be
	// reported after that.
	if nd.nAll == 0 && nd.bfsDepth >= 0 && r > nd.bfsDepth+2 {
		if !nd.cntSent && len(nd.childCounts) >= len(nd.bfsChildren) {
			total := uint32(1)
			for _, c := range nd.childCounts {
				total += c
			}
			nd.cntSent = true
			if nd.id == 0 {
				nd.nAll = int(total)
				nd.nForward = true
			} else {
				send(nd.bfsParent, cntReport{total})
			}
		}
	}
	if nd.nForward {
		nd.nForward = false
		for _, c := range nd.bfsChildren {
			send(c, nBcast{uint32(nd.nAll)})
		}
	}
	// Step 1 of Algorithm 4: forward the diameter and stop.
	if nd.diamForward {
		nd.diamForward = false
		for _, c := range nd.bfsChildren {
			send(c, finDiam{nd.diameter})
		}
		nd.stopped = true
		return
	}
	if nd.fv || nd.bfsDepth < 0 {
		return
	}
	// The children set of v is final after round depth(v)+2; evaluating
	// earlier could treat an incomplete child set as complete.
	if r <= nd.bfsDepth+2 {
		return
	}
	// Step 2: |Lv| = n and all entries sent (r >= max scheduled round).
	// With unknown n, the check waits until the convergecast delivered
	// the vertex count.
	if nd.nAll == 0 || len(nd.list) != nd.nAll || nd.sentCount != len(nd.list) {
		return
	}
	if len(nd.childMax) < len(nd.bfsChildren) {
		return // Step 6: not all children reported yet
	}
	// Steps 3-9.
	dv := uint32(0)
	for _, e := range nd.list {
		if e.d > dv {
			dv = e.d
		}
	}
	for _, c := range nd.childMax {
		if c > dv {
			dv = c
		}
	}
	nd.fv = true
	if nd.id == 0 {
		// Step 9: v1 computed the diameter; broadcast and stop.
		nd.diameter = dv
		for _, c := range nd.bfsChildren {
			send(c, finDiam{dv})
		}
		nd.stopped = true
		return
	}
	send(nd.bfsParent, finMax{dv})
}

// Done reports local completion: all entries transmitted, and in
// finalizer mode the diameter received.
func (nd *bcNode) Done() bool {
	if nd.ph == phaseBackward {
		return nd.accDone == len(nd.accOrder)
	}
	if nd.sentCount != len(nd.list) {
		return false
	}
	if nd.mode == ModeFinalizer {
		return nd.stopped
	}
	return true
}

// beginBackward switches the node to Algorithm 5 with forward
// termination round R. Asv = R - τsv + 1 keeps rounds 1-based; the
// uniform shift preserves the ordering Lemma 7 relies on.
func (nd *bcNode) beginBackward(R int) {
	nd.ph = phaseBackward
	nd.totalR = R
	nd.accOrder = nd.accOrder[:0]
	for s, six := range nd.srcIx {
		_ = s
		if nd.dist[six] == graph.InfDist {
			continue
		}
		nd.accOrder = append(nd.accOrder, accSlot{round: R - nd.tau[six] + 1, six: six})
	}
	sort.Slice(nd.accOrder, func(i, j int) bool { return nd.accOrder[i].round < nd.accOrder[j].round })
	nd.accDone = 0
}

func (nd *bcNode) sendBackward(r int, send func(uint32, any)) {
	// Step 6-7 of Algorithm 5: each source's accumulation message goes
	// out in its own round Asv (all Asv are distinct at a vertex since
	// the τsv are).
	for nd.accDone < len(nd.accOrder) && nd.accOrder[nd.accDone].round == r {
		six := nd.accOrder[nd.accDone].six
		nd.accDone++
		if nd.sigma[six] == 0 {
			panic(fmt.Sprintf("core: vertex %d: zero sigma at accumulation", nd.id))
		}
		msg := accMsg{s: nd.sourceOf(six), m: (1 + nd.delta[six]) / nd.sigma[six]}
		for _, p := range nd.preds[six] {
			send(p, msg)
		}
	}
}

func (nd *bcNode) receiveBackward(inbox []congest.Delivery) {
	for _, dl := range inbox {
		m, ok := dl.Payload.(accMsg)
		if !ok {
			panic(fmt.Sprintf("core: vertex %d: unexpected backward message %T", nd.id, dl.Payload))
		}
		six := nd.srcIx[m.s]
		// Step 8-9: δs•(v) += σsv · m.
		nd.delta[six] += nd.sigma[six] * m.m
	}
}

// sourceOf maps a compact index back to the source vertex ID.
func (nd *bcNode) sourceOf(six int) uint32 {
	// srcIx is small (k entries); a reverse lookup table is built once
	// per node in newBCNode instead of scanning. See revSrc.
	return nd.revSrc[six]
}

// revSrc is filled by newBCNode.

func newBCNode(g *graph.Graph, ug *graph.Graph, v uint32, sources []uint32, srcIx map[uint32]int, mode TerminationMode, knowsN bool) *bcNode {
	k := len(sources)
	nAll := g.NumVertices()
	if !knowsN {
		nAll = 0
	}
	nd := &bcNode{
		id:       v,
		out:      g.OutNeighbors(v),
		nbrs:     ug.OutNeighbors(v),
		nAll:     nAll,
		srcIx:    srcIx,
		mode:     mode,
		dist:     make([]uint32, k),
		sigma:    make([]float64, k),
		preds:    make([][]uint32, k),
		tau:      make([]int, k),
		sent:     make([]bool, k),
		delta:    make([]float64, k),
		bfsDepth: -1,
		diameter: graph.InfDist,
		revSrc:   sources,
	}
	for i := range nd.dist {
		nd.dist[i] = graph.InfDist
	}
	if six, ok := srcIx[v]; ok {
		// Step 3-4 of Algorithm 3 (restricted to the k sources for the
		// k-SSP variant of Lemma 8).
		nd.dist[six] = 0
		nd.sigma[six] = 1
		nd.list = append(nd.list, listEntry{d: 0, s: v})
	}
	return nd
}
