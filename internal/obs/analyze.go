package obs

import "sort"

// This file holds the trace-analysis accumulators behind cmd/bctrace:
// per-host load imbalance, per-round latency and critical path, and
// canonical-trace comparison. The accumulators consume events one at a
// time (feed them from an EventReader) so detail traces far larger
// than memory stream through; their working state is bounded by
// rounds × hosts, not by event count.

// HostLoad is one host's total compute time over a trace.
type HostLoad struct {
	Host      int32
	ComputeNs int64
}

// ImbalanceReport aggregates compute-phase load balance.
type ImbalanceReport struct {
	// PerHost lists total compute time per host, ascending host order.
	PerHost []HostLoad
	// Mean is the mean over compute phases of the max/mean ratio across
	// participating hosts — computed with the identical arithmetic as
	// dgalois.Stats.LoadImbalance, so the two agree exactly on a
	// complete phase trace. 1.0 when no phase had activity.
	Mean float64
	// Phases counts the compute phases contributing a sample.
	Phases int
	// MaxRatio is the worst single-phase ratio (1.0 when none).
	MaxRatio float64
}

// imbGroup collects one compute dispatch's per-host durations, keyed
// by the coordinator-serial Seq so concurrently-emitted host slices
// reassemble deterministically.
type imbGroup struct {
	sum          int64
	max          int64
	participants int
}

// ImbalanceAccum folds compute-phase events into an ImbalanceReport.
type ImbalanceAccum struct {
	hosts  map[int32]int64
	groups map[int64]*imbGroup
}

// Observe folds one event (non-compute events are ignored).
func (a *ImbalanceAccum) Observe(e Event) {
	if e.Kind != KindPhase || e.Phase != PhaseCompute {
		return
	}
	if a.hosts == nil {
		a.hosts = make(map[int32]int64)
		a.groups = make(map[int64]*imbGroup)
	}
	a.hosts[e.Host] += e.DurNs
	g := a.groups[e.Seq]
	if g == nil {
		g = &imbGroup{}
		a.groups[e.Seq] = g
	}
	// Idle hosts (zero duration) are excluded from the sample, exactly
	// as dgalois's roundImbalance excludes them from the mean.
	if e.DurNs > 0 {
		g.sum += e.DurNs
		g.max = max(g.max, e.DurNs)
		g.participants++
	}
}

// Report computes the aggregate. Groups fold in Seq order, matching
// the coordinator's serial accumulation bit for bit.
func (a *ImbalanceAccum) Report() ImbalanceReport {
	r := ImbalanceReport{Mean: 1.0, MaxRatio: 1.0}
	for h, ns := range a.hosts {
		r.PerHost = append(r.PerHost, HostLoad{Host: h, ComputeNs: ns})
	}
	sort.Slice(r.PerHost, func(i, j int) bool { return r.PerHost[i].Host < r.PerHost[j].Host })
	seqs := make([]int64, 0, len(a.groups))
	for s := range a.groups {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	sum := 0.0
	for _, s := range seqs {
		g := a.groups[s]
		if g.participants == 0 {
			continue
		}
		mean := float64(g.sum) / float64(g.participants)
		imb := float64(g.max) / mean
		sum += imb
		r.Phases++
		if imb > r.MaxRatio {
			r.MaxRatio = imb
		}
	}
	if r.Phases > 0 {
		r.Mean = sum / float64(r.Phases)
	}
	return r
}

// WorkerLoad is one intra-host engine worker's totals over a trace.
type WorkerLoad struct {
	Host         int32
	Worker       int32
	Tasks        int64
	Steals       int64
	FailedSteals int64
	Flushes      int64
	Batches      int // worker events folded in
}

// WorkerReport aggregates per-worker intra-host scheduler load: the
// complement of ImbalanceReport's inter-host view, fed by the worker
// events the distributed runner emits once per (batch, host, worker).
type WorkerReport struct {
	// PerWorker lists totals ascending by (host, worker).
	PerWorker []WorkerLoad
	// MaxShare is the worst max/mean task ratio across any single
	// host's workers (1.0 when no host had multi-worker activity):
	// intra-host skew after stealing rebalanced it.
	MaxShare float64
}

// WorkerAccum folds worker events into a WorkerReport.
type WorkerAccum struct {
	m map[int64]*WorkerLoad
}

// Observe folds one event (non-worker events are ignored).
func (a *WorkerAccum) Observe(e Event) {
	if e.Kind != KindWorker {
		return
	}
	if a.m == nil {
		a.m = make(map[int64]*WorkerLoad)
	}
	key := int64(e.Host)<<32 | int64(uint32(e.Worker))
	w := a.m[key]
	if w == nil {
		w = &WorkerLoad{Host: e.Host, Worker: e.Worker}
		a.m[key] = w
	}
	w.Tasks += e.Tasks
	w.Steals += e.Steals
	w.FailedSteals += e.FailedSteals
	w.Flushes += e.Flushes
	w.Batches++
}

// Report computes the aggregate.
func (a *WorkerAccum) Report() WorkerReport {
	r := WorkerReport{MaxShare: 1.0}
	for _, w := range a.m {
		r.PerWorker = append(r.PerWorker, *w)
	}
	sort.Slice(r.PerWorker, func(i, j int) bool {
		if r.PerWorker[i].Host != r.PerWorker[j].Host {
			return r.PerWorker[i].Host < r.PerWorker[j].Host
		}
		return r.PerWorker[i].Worker < r.PerWorker[j].Worker
	})
	// Per-host max/mean task skew, worst host wins.
	byHost := make(map[int32][]int64)
	for _, w := range r.PerWorker {
		byHost[w.Host] = append(byHost[w.Host], w.Tasks)
	}
	for _, tasks := range byHost {
		if len(tasks) < 2 {
			continue
		}
		var sum, max int64
		for _, t := range tasks {
			sum += t
			if t > max {
				max = t
			}
		}
		if sum == 0 {
			continue
		}
		if share := float64(max) * float64(len(tasks)) / float64(sum); share > r.MaxShare {
			r.MaxShare = share
		}
	}
	return r
}

// RoundCost summarizes one BSP round's critical path.
type RoundCost struct {
	Round int32
	// WallNs approximates the round's wall time: the sum over its
	// compute dispatches of the slowest host's slice, plus its exchange
	// slices.
	WallNs int64
	// ExchangeNs sums the round's exchange slices; HiddenNs is the part
	// of that wait the pipelined exchange hid behind compute (0 on
	// non-pipelined traces).
	ExchangeNs int64
	HiddenNs   int64
	// SlowHost is the host with the most compute time in the round
	// (the round's critical-path host); SlowNs is that time.
	SlowHost int32
	SlowNs   int64
}

// RoundReport aggregates per-round latency.
type RoundReport struct {
	Rounds []RoundCost // ascending round order
	// SlowestCount maps host -> number of rounds it was the
	// critical-path host.
	SlowestCount map[int32]int
}

type roundAgg struct {
	computeMax map[int64]int64 // seq -> max host slice
	exchangeNs int64
	hiddenNs   int64
	hostNs     map[int32]int64
}

// RoundAccum folds phase events into a RoundReport.
type RoundAccum struct {
	rounds map[int32]*roundAgg
}

// Observe folds one event (non-phase events are ignored).
func (a *RoundAccum) Observe(e Event) {
	if e.Kind != KindPhase {
		return
	}
	if a.rounds == nil {
		a.rounds = make(map[int32]*roundAgg)
	}
	g := a.rounds[e.Round]
	if g == nil {
		g = &roundAgg{computeMax: make(map[int64]int64), hostNs: make(map[int32]int64)}
		a.rounds[e.Round] = g
	}
	switch e.Phase {
	case PhaseCompute:
		g.computeMax[e.Seq] = max(g.computeMax[e.Seq], e.DurNs)
		g.hostNs[e.Host] += e.DurNs
	case PhaseExchange:
		g.exchangeNs += e.DurNs
		g.hiddenNs += e.HiddenNs
	}
}

// Report computes the aggregate.
func (a *RoundAccum) Report() RoundReport {
	r := RoundReport{SlowestCount: make(map[int32]int)}
	for round, g := range a.rounds {
		c := RoundCost{Round: round, WallNs: g.exchangeNs,
			ExchangeNs: g.exchangeNs, HiddenNs: g.hiddenNs, SlowHost: -1}
		for _, d := range g.computeMax {
			c.WallNs += d
		}
		for h, ns := range g.hostNs {
			if ns > c.SlowNs || (ns == c.SlowNs && (c.SlowHost == -1 || h < c.SlowHost)) {
				c.SlowHost, c.SlowNs = h, ns
			}
		}
		r.Rounds = append(r.Rounds, c)
		if c.SlowHost >= 0 {
			r.SlowestCount[c.SlowHost]++
		}
	}
	sort.Slice(r.Rounds, func(i, j int) bool { return r.Rounds[i].Round < r.Rounds[j].Round })
	return r
}

// Divergence is the result of comparing two canonical traces.
type Divergence struct {
	// Index is the position of the first differing canonical event, or
	// -1 when the traces are identical.
	Index int
	// A and B hold the differing events; nil on the side whose trace
	// ended first when one is a strict prefix of the other.
	A, B *Event
}

// Diff canonicalizes both traces (Canonical: sort + strip timings) and
// returns the first divergence. Two runs of the same configuration
// canonicalize identically, so the first divergent event localizes
// where a perturbed run left the reference schedule.
func Diff(a, b []Event) Divergence {
	ca, cb := Canonical(a), Canonical(b)
	n := min(len(ca), len(cb))
	for i := 0; i < n; i++ {
		if ca[i] != cb[i] {
			return Divergence{Index: i, A: &ca[i], B: &cb[i]}
		}
	}
	if len(ca) > n {
		return Divergence{Index: n, A: &ca[n]}
	}
	if len(cb) > n {
		return Divergence{Index: n, B: &cb[n]}
	}
	return Divergence{Index: -1}
}
