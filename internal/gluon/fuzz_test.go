package gluon

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"mrbc/internal/bitset"
)

// FuzzDecodeFrame asserts the frame decoder never panics on arbitrary
// bytes and that acceptance implies a frame EncodeFrame could have
// produced: DecodeFrame is the one parser in the sync path that sees
// raw, possibly-corrupted network bytes (DecodeUpdates only ever sees
// payloads the frame checksum already vouched for).
func FuzzDecodeFrame(f *testing.F) {
	f.Add(EncodeFrame(0, nil))
	f.Add(EncodeFrame(42, []byte("payload")))
	f.Add(EncodeFrame(1<<31, bytes.Repeat([]byte{0xaa}, 100)))
	f.Add([]byte("GLNF"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		seq, payload, err := DecodeFrame(data)
		if err != nil {
			return
		}
		// Accepted frames must re-encode to the identical bytes: the
		// format has no slack (fixed header, exact length, checksum),
		// so decode∘encode is the identity on valid frames.
		if re := EncodeFrame(seq, payload); !bytes.Equal(re, data) {
			t.Fatalf("accepted frame is not canonical: % x != % x", re, data)
		}
	})
}

// fuzzSeedMessage builds a valid update message for the corpus.
func fuzzSeedMessage(f Format, listLen int, positions []int) []byte {
	m := bitset.New(listLen)
	for _, p := range positions {
		m.Set(p)
	}
	w := &Writer{}
	w.ForceFormat(f)
	EncodeUpdates(w, listLen, m, func(pos int, w *Writer) { w.U32(uint32(pos)) })
	return append([]byte(nil), w.Bytes()...)
}

// FuzzDecodeUpdates asserts the multi-format update decoder is memory-
// safe on arbitrary bytes: it either applies positions that are
// strictly ascending and in range, consuming the whole buffer, or it
// rejects the message with a gluon-prefixed panic (the documented
// convention for malformed sync payloads — which the frame checksum
// normally screens out). It must never fault with an out-of-bounds
// runtime error and never return having applied nothing.
func FuzzDecodeUpdates(f *testing.F) {
	all := func(n int) []int {
		ps := make([]int, n)
		for i := range ps {
			ps[i] = i
		}
		return ps
	}
	// Valid messages in every format, including multi-word dense and
	// multi-byte varint deltas.
	f.Add(100, fuzzSeedMessage(FormatDense, 100, []int{3, 64, 99}))
	f.Add(100, fuzzSeedMessage(FormatSparse, 100, []int{3, 64, 99}))
	f.Add(4, fuzzSeedMessage(FormatAll, 4, all(4)))
	f.Add(300, fuzzSeedMessage(FormatSparse, 300, []int{0, 200, 299}))
	f.Add(65, fuzzSeedMessage(FormatDense, 65, []int{0, 64}))
	// Malformed shapes: unknown header, zero count, truncated mid-varint,
	// trailing garbage.
	f.Add(8, []byte{9, 8, 0, 0, 0})
	f.Add(8, []byte{2, 8, 0, 0, 0, 0, 0, 0, 0})
	f.Add(300, fuzzSeedMessage(FormatSparse, 300, []int{200})[:7])
	f.Add(4, append(fuzzSeedMessage(FormatAll, 4, all(4)), 0xff))
	f.Fuzz(func(t *testing.T, listLen int, data []byte) {
		if listLen < 0 || listLen > 1<<16 {
			return
		}
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			if _, oob := r.(runtime.Error); oob {
				t.Fatalf("decoder hit a runtime error (listLen=%d, % x): %v", listLen, data, r)
			}
			if s, ok := r.(string); !ok || !strings.HasPrefix(s, "gluon:") {
				t.Fatalf("non-convention panic %v (%T)", r, r)
			}
		}()
		dec := NewDecoder()
		prev := -1
		applied := 0
		dec.DecodeUpdates(listLen, data, func(pos int, r *Reader) {
			if pos <= prev || pos >= listLen {
				t.Fatalf("applied position %d after %d over list of %d", pos, prev, listLen)
			}
			prev = pos
			applied++
			r.U32()
		})
		if applied == 0 {
			t.Fatal("decoder returned without applying any position")
		}
	})
}
