package clustertest

import (
	"fmt"
	"testing"
	"time"

	"mrbc/internal/clusterrun"
)

// TestClusterMatchesOracle runs the flagship engine across real
// 2-, 4-, and 8-process clusters and pins the full correctness
// contract: the elementwise-summed distributed scores match the
// sequential Brandes oracle to 1e-9, and the per-host results sum to
// exactly the in-process simulated run — same scores, same round
// count, same logical communication volume. The distributed transport
// may retry and re-dial all it wants; none of that is allowed to show
// up in the paper-model numbers.
func TestClusterMatchesOracle(t *testing.T) {
	for _, hosts := range []int{2, 4, 8} {
		hosts := hosts
		t.Run(fmt.Sprintf("hosts=%d", hosts), func(t *testing.T) {
			spec := baseSpec(t)
			spec.Engine = "mrbcdist"
			checkClusterAgainstReference(t, hosts, spec)
		})
	}
}

// TestClusterEngineAndPartitionVariants covers the second engine and
// the second partition policy on 4-process clusters.
func TestClusterEngineAndPartitionVariants(t *testing.T) {
	t.Run("sbbc", func(t *testing.T) {
		spec := baseSpec(t)
		spec.Engine = "sbbc"
		checkClusterAgainstReference(t, 4, spec)
	})
	t.Run("cartesian", func(t *testing.T) {
		spec := baseSpec(t)
		spec.Engine = "mrbcdist"
		spec.Partition = "cartesian"
		checkClusterAgainstReference(t, 4, spec)
	})
}

func checkClusterAgainstReference(t *testing.T, hosts int, spec clusterrun.JobSpec) {
	t.Helper()
	c := launch(t, hosts)
	agg, err := runWithTimeout(t, c, spec, clusterrun.RunOptions{}, 2*time.Minute)
	if err != nil {
		t.Fatalf("%d-host run: %v", hosts, err)
	}

	if diff := clusterrun.MaxScoreDiff(agg.Scores, oracle()); diff > 1e-9 {
		t.Errorf("%d-host scores deviate from Brandes oracle by %g (budget 1e-9)", hosts, diff)
	}

	spec.Hosts = hosts
	ref := refRun(t, spec)
	if diff := clusterrun.MaxScoreDiff(agg.Scores, ref.Scores); diff > 1e-12 {
		t.Errorf("summed distributed scores deviate from in-process run by %g", diff)
	}
	if agg.Rounds != ref.Rounds {
		t.Errorf("distributed run took %d rounds, in-process run %d", agg.Rounds, ref.Rounds)
	}
	if agg.Bytes != ref.Bytes || agg.Messages != ref.Messages {
		t.Errorf("per-host volume sums to %d msgs / %d bytes, in-process run counted %d / %d",
			agg.Messages, agg.Bytes, ref.Messages, ref.Bytes)
	}
	for _, res := range agg.PerHost {
		if res.Fault != nil {
			t.Errorf("host %d reported a fault on a clean network: %+v", res.Host, res.Fault)
		}
	}
}

// TestClusterReusesDaemons pins the persistent-daemon contract the
// chaos sweep depends on: one spawned cluster serves many jobs.
func TestClusterReusesDaemons(t *testing.T) {
	c := launch(t, 2)
	spec := baseSpec(t)
	spec.Engine = "mrbcdist"
	for i := 0; i < 3; i++ {
		agg, err := runWithTimeout(t, c, spec, clusterrun.RunOptions{}, time.Minute)
		if err != nil {
			t.Fatalf("job %d on reused cluster: %v", i, err)
		}
		if diff := clusterrun.MaxScoreDiff(agg.Scores, oracle()); diff > 1e-9 {
			t.Fatalf("job %d: scores deviate by %g", i, diff)
		}
	}
}
