// Package tracetest verifies the paper's round structure against
// recorded execution traces rather than aggregate counters: Lemma 8's
// per-batch round bound and the backward-reversal symmetry of
// Algorithm 5 are checked send-by-send on obs.LevelDetail traces of
// every engine, golden canonical traces pin determinism across
// worker-pool sizes, and seeded fault plans must leave the paper-model
// event stream byte-identical to a fault-free run.
package tracetest
