package dgalois

import (
	"fmt"
	"sort"
	"time"

	"mrbc/internal/gluon"
	"mrbc/internal/obs"
)

// Reliable exchange: the fault-tolerant replacement for the perfect
// all-to-all of dgalois.go, used whenever the cluster carries a
// FaultPlan. One BSP exchange becomes a loop of *delivery steps*:
//
//  1. every sender (re)transmits its unacknowledged frames — each
//     message travels in a gluon frame with a per-channel sequence
//     number and CRC-32C checksum;
//  2. the fault plan mutates transmissions in flight (drop, duplicate,
//     delay, truncate, corrupt, reorder) and silences stalled hosts;
//  3. receivers verify the checksum and sequence number, unpack each
//     message exactly once (duplicates from retransmits or Dup faults
//     are detected by sequence number and merely re-acknowledged), and
//     return acks, which the plan may also drop;
//  4. a sender stops retransmitting a channel once its ack arrives.
//
// The loop ends when every message is acknowledged — the BSP barrier
// therefore still guarantees complete, exactly-once delivery to the
// algorithms above, which is why they stay oracle-exact under every
// recoverable fault schedule. If the deadline expires first (a host
// stalled past it, or pathological loss), the exchange aborts the run
// with a structured *FaultError via panic/Capture instead of
// deadlocking the barrier.
//
// Accounting: Stats.Bytes/Messages count each logical payload exactly
// once (the paper-model volume, identical with and without the fault
// layer); framing overhead, retransmissions, and acks are tallied
// separately in FaultStats.

// ackBytes models the wire cost of one acknowledgement (channel seq +
// host pair), tallied in FaultStats only.
const ackBytes = 12

// reliableChannel is one in-flight logical message.
type reliableChannel struct {
	from, to  int
	seq       uint32
	frame     []byte
	attempts  int
	delivered bool // receiver has unpacked it
	acked     bool // sender has seen the ack
}

// reliableArrival is one (possibly damaged) copy in flight.
type reliableArrival struct {
	ch   *reliableChannel
	data []byte
	due  int // delivery step at which it reaches the receiver
	id   uint64
}

func (c *Cluster) exchangeReliable(pack func(from, to int, w *gluon.Writer), unpack func(to, from int, data []byte, dec *gluon.Decoder)) {
	// The reliable path consumes exactly as many phase sequence numbers
	// as the perfect path (pack, then unpack; the transport event rides
	// on the unpack seq), so the paper-model event stream of a faulty
	// run lines up event-for-event with the fault-free run's. It claims
	// an exchange ticket like the perfect path but stays fully
	// synchronous, and its exchange indices stay globally sequential
	// even inside a batch stream — stall schedules key on them.
	t := c.claimTicket()
	t.packSeq = c.nextSeq()
	t.unpackSeq = c.nextSeq()
	if c.trace != nil {
		t.resetTallies()
	}
	t.round = c.roundsC.Load() - c.baseRounds
	t.batch = c.eventBatch
	fBefore := c.faults
	start := time.Now()
	t.start = start
	p := c.plan
	ex := c.exchanges
	c.exchanges++
	t.ex = ex
	c.curEx = ex
	c.curWriters = t.writers
	c.curPack = t.hostPack
	c.curUnpack = t.hostUnpack
	c.curPairPack = t.pairPack
	c.curPairUnpack = t.pairUnpack

	// Pack phase: the same pair-parallel pooled-writer loop as the
	// fault-free path, which also does the paper-model volume
	// accounting (each payload counted exactly once, before any fault
	// can touch it). Packed buffers land in the in-process transport's
	// inbox matrix (a FaultPlan requires the MemTransport — enforced at
	// construction), from which the delivery-step loop below picks them
	// up for framed, faulted redelivery.
	c.runPackPhase(pack)
	packEnd := time.Now()
	t.packEnd = packEnd

	// Frame every non-empty buffer. EncodeFrame copies the payload, so
	// the pooled writers are free for the next exchange regardless of
	// how long retransmission keeps frames alive.
	var chans []*reliableChannel
	for from := 0; from < c.hosts; from++ {
		for to := 0; to < c.hosts; to++ {
			buf := c.mem.Buffered(ex, from, to)
			if len(buf) == 0 {
				continue
			}
			c.seqOut[from][to]++
			fr := gluon.EncodeFrame(c.seqOut[from][to], buf)
			c.faults.FrameBytes += gluon.FrameOverhead
			c.faults.PerHost[from].SentMessages++
			chans = append(chans, &reliableChannel{from: from, to: to, seq: c.seqOut[from][to], frame: fr})
		}
	}

	unacked := len(chans)
	deadline := p.deadline()
	var inflight, due []reliableArrival
	step := 0
	for unacked > 0 {
		step++
		if step > deadline {
			c.commWall += time.Since(start)
			panic(abortPanic{err: c.deadlineError(chans, ex, step)})
		}
		// Stall accounting: once per silenced host per step while the
		// exchange is in progress.
		for h := 0; h < c.hosts; h++ {
			if p.stalled(h, ex, step) {
				c.faults.StalledSteps++
				c.faults.PerHost[h].StalledSteps++
			}
		}

		// Transmit every unacknowledged channel whose sender is awake.
		for _, ch := range chans {
			if ch.acked || p.stalled(ch.from, ex, step) {
				continue
			}
			ch.attempts++
			if ch.attempts > 1 {
				c.faults.RetryMessages++
				c.faults.RetryBytes += int64(len(ch.frame))
				c.faults.PerHost[ch.from].Retries++
				c.faults.PerHost[ch.from].RetryBytes += int64(len(ch.frame))
			}
			nonce := uint64(ch.attempts)
			if p.chance(p.Drop, kindDrop, ch.from, ch.to, ch.seq, nonce) {
				c.faults.Drops++
				c.faults.PerHost[ch.from].FaultsOut++
				continue
			}
			copies := 1
			if p.chance(p.Dup, kindDup, ch.from, ch.to, ch.seq, nonce) {
				copies = 2
				c.faults.Dups++
				c.faults.PerHost[ch.from].FaultsOut++
			}
			for ci := 0; ci < copies; ci++ {
				id := nonce<<8 | uint64(ci)
				data := ch.frame
				switch {
				case p.chance(p.Truncate, kindTruncate, ch.from, ch.to, ch.seq, id):
					cut := 1 + p.intn(len(data)-1, kindTruncLen, ch.from, ch.to, ch.seq, id)
					data = data[:cut]
					c.faults.Truncations++
					c.faults.PerHost[ch.from].FaultsOut++
				case p.chance(p.Corrupt, kindCorrupt, ch.from, ch.to, ch.seq, id):
					cp := append([]byte(nil), data...)
					bit := p.intn(len(cp)*8, kindCorruptBit, ch.from, ch.to, ch.seq, id)
					cp[bit/8] ^= 1 << (bit % 8)
					data = cp
					c.faults.Corruptions++
					c.faults.PerHost[ch.from].FaultsOut++
				}
				d := 0
				if p.chance(p.Delay, kindDelay, ch.from, ch.to, ch.seq, id) {
					d = 1 + p.intn(p.maxDelay(), kindDelayLen, ch.from, ch.to, ch.seq, id)
					c.faults.Delays++
					c.faults.PerHost[ch.from].FaultsOut++
				}
				inflight = append(inflight, reliableArrival{ch: ch, data: data, due: step + d, id: id})
			}
		}

		// Split out this step's arrivals; later ones stay in flight.
		due = due[:0]
		keep := inflight[:0]
		for _, a := range inflight {
			if a.due <= step {
				due = append(due, a)
			} else {
				keep = append(keep, a)
			}
		}
		inflight = keep

		// Deterministic arrival order: by receiver, then sender, then
		// copy id. A Reorder fault reverses one receiver's arrivals
		// within the step (observable through unpack call order, which
		// the algorithms must tolerate — their reductions commute).
		sort.SliceStable(due, func(i, j int) bool {
			if due[i].ch.to != due[j].ch.to {
				return due[i].ch.to < due[j].ch.to
			}
			if due[i].ch.from != due[j].ch.from {
				return due[i].ch.from < due[j].ch.from
			}
			return due[i].id < due[j].id
		})
		for lo := 0; lo < len(due); {
			hi := lo + 1
			for hi < len(due) && due[hi].ch.to == due[lo].ch.to {
				hi++
			}
			if hi-lo > 1 && p.chance(p.Reorder, kindReorder, due[lo].ch.to, due[lo].ch.to, uint32(ex), uint64(step)) {
				c.faults.Reorders++
				for i, j := lo, hi-1; i < j; i, j = i+1, j-1 {
					due[i], due[j] = due[j], due[i]
				}
			}
			lo = hi
		}

		// Receive, verify, unpack once, acknowledge.
		for _, a := range due {
			ch := a.ch
			if p.stalled(ch.to, ex, step) {
				continue // receiver deaf; the copy is lost, sender retries
			}
			seq, payload, err := gluon.DecodeFrame(a.data)
			if err != nil {
				continue // damaged in flight: no ack, sender retries
			}
			if seq != ch.seq {
				continue // defensive: a foreign sequence number is never applied
			}
			if !ch.delivered {
				if want := c.seqIn[ch.to][ch.from] + 1; seq != want {
					panic(fmt.Sprintf("dgalois: channel %d->%d received seq %d, want %d", ch.from, ch.to, seq, want))
				}
				unpack(ch.to, ch.from, payload, c.decoders[ch.to])
				ch.delivered = true
				c.seqIn[ch.to][ch.from] = seq
				if c.trace != nil {
					// Delivered payload == packed payload (checksum-
					// verified), so receiver tallies match the fault-free
					// run exactly. Delivery runs on the coordinator, so no
					// atomics are needed here.
					c.curUnpack[ch.to].bytes += int64(len(payload))
					c.curUnpack[ch.to].messages++
					c.tallyUnpackPair(ch.from, ch.to, int64(len(payload)))
				}
			}
			// Ack travels back unless faulted or the sender is deaf; a
			// lost ack just means one more retransmission and a
			// sequence-deduplicated re-ack next step.
			if p.chance(p.AckDrop, kindAckDrop, ch.from, ch.to, ch.seq, a.id) {
				c.faults.AckDrops++
				continue
			}
			if p.stalled(ch.from, ex, step) {
				continue
			}
			if !ch.acked {
				ch.acked = true
				unacked--
				c.faults.AckMessages++
				c.faults.AckBytes += ackBytes
			}
		}
	}

	c.mem.Reclaim(ex)
	c.faults.DeliverySteps += int64(step)
	if step > c.faults.MaxDeliverySteps {
		c.faults.MaxDeliverySteps = step
	}
	end := time.Now()
	wall := end.Sub(start)
	c.commWall += wall
	c.commHist.Observe(wall.Seconds())
	if c.trace != nil {
		c.emitExchangeEvents(t, packEnd, end, 0)
		f := &c.faults
		injected := (f.Drops - fBefore.Drops) + (f.Dups - fBefore.Dups) +
			(f.Delays - fBefore.Delays) + (f.Truncations - fBefore.Truncations) +
			(f.Corruptions - fBefore.Corruptions) + (f.Reorders - fBefore.Reorders) +
			(f.AckDrops - fBefore.AckDrops)
		c.trace.Emit(obs.Event{Kind: obs.KindTransport, Seq: t.unpackSeq, Batch: t.batch,
			Round: int32(c.roundsC.Load()), Host: -1,
			Retries:     f.RetryMessages - fBefore.RetryMessages,
			RetryBytes:  f.RetryBytes - fBefore.RetryBytes,
			FrameBytes:  f.FrameBytes - fBefore.FrameBytes,
			AckMessages: f.AckMessages - fBefore.AckMessages,
			AckBytes:    f.AckBytes - fBefore.AckBytes,
			Steps:       int64(step),
			Injected:    injected,
			Stalled:     f.StalledSteps - fBefore.StalledSteps,
			StartNs:     start.Sub(c.epoch).Nanoseconds(),
			DurNs:       wall.Nanoseconds()})
	}
	t.inUse = false
}

// deadlineError builds the structured error for an exchange that could
// not complete: it implicates a killed host first (a dead peer is a
// stronger diagnosis than a slow one), then a host stalled at the
// deadline, else the receiver of the first pending message.
func (c *Cluster) deadlineError(chans []*reliableChannel, ex, step int) *FaultError {
	pending := 0
	host := -1
	killed := false
	reason := "messages undeliverable within the deadline"
	for _, ch := range chans {
		if ch.acked {
			continue
		}
		pending++
		if host < 0 {
			host = ch.to
		}
		for _, h := range []int{ch.from, ch.to} {
			if c.plan.killed(h, ex, step) {
				host = h
				killed = true
				reason = fmt.Sprintf("host %d killed during exchange %d", h, ex)
			} else if !killed && c.plan.stalled(h, ex, step) {
				host = h
				reason = fmt.Sprintf("host %d stalled past the %d-step deadline", h, c.plan.deadline())
			}
		}
	}
	if killed {
		c.markDead(host)
	}
	return &FaultError{Host: host, Exchange: ex, Step: step, Pending: pending, Killed: killed, Reason: reason}
}
