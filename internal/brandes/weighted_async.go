package brandes

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mrbc/internal/graph"
	"mrbc/internal/worklist"
)

// WeightedAsync is the weighted mode of the ABBC baseline: chaotic
// asynchronous shortest-path relaxation (no rounds, no priority order —
// the worklist serves vertices in arbitrary order and distances settle
// at the fixpoint), followed by distance-ordered σ and dependency
// sweeps. Weighted graphs are where asynchrony helps most: a
// label-correcting run wastes some relaxations but never waits at a
// barrier.
func WeightedAsync(g *graph.Weighted, sources []uint32, cfg AsyncConfig) []float64 {
	cfg = cfg.withDefaults()
	n := g.NumVertices()
	scores := make([]float64, n)
	dist := make([]uint64, n)
	for _, s := range sources {
		validateWeightedSource(g, s)
		weightedAsyncForward(g, s, dist, cfg)

		// Distance-ordered sweeps, reusing the final distances.
		order := make([]uint32, 0, n)
		for v := 0; v < n; v++ {
			if dist[v] != graph.InfWeightedDist {
				order = append(order, uint32(v))
			}
		}
		sort.Slice(order, func(i, j int) bool { return dist[order[i]] < dist[order[j]] })

		sigma := make([]float64, n)
		sigma[s] = 1
		for _, v := range order {
			if v == s {
				continue
			}
			srcs, ws := g.InEdges(v)
			var acc float64
			for i, u := range srcs {
				if du := dist[u]; du != graph.InfWeightedDist && du+uint64(ws[i]) == dist[v] {
					acc += sigma[u]
				}
			}
			sigma[v] = acc
		}

		delta := make([]float64, n)
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			coeff := (1 + delta[w]) / sigma[w]
			srcs, ws := g.InEdges(w)
			for j, v := range srcs {
				if dv := dist[v]; dv != graph.InfWeightedDist && dv+uint64(ws[j]) == dist[w] {
					delta[v] += sigma[v] * coeff
				}
			}
			if w != s {
				scores[w] += delta[w]
			}
		}
	}
	return scores
}

// weightedAsyncForward fills dist via asynchronous label-correcting
// relaxation over an ordered (OBIM-style) worklist: tentative
// distances serve as priorities, so work proceeds in near-Dijkstra
// order without any global barrier, bounding re-relaxations the way
// the Lonestar scheduler does.
func weightedAsyncForward(g *graph.Weighted, s uint32, dist []uint64, cfg AsyncConfig) {
	for i := range dist {
		dist[i] = graph.InfWeightedDist
	}
	atomic.StoreUint64(&dist[s], 0)
	wl := worklist.NewOrdered(cfg.ChunkSize)
	wl.Push(0, uint64(s))

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []uint64
			idle := 0
			for {
				buf = wl.PopChunk(buf[:0])
				if len(buf) == 0 {
					if wl.Empty() {
						return
					}
					idle++
					if idle < 4 {
						runtime.Gosched()
					} else {
						time.Sleep(time.Duration(idle) * 5 * time.Microsecond)
						if idle > 50 {
							idle = 50
						}
					}
					continue
				}
				idle = 0
				for _, item := range buf {
					u := uint32(item)
					du := atomic.LoadUint64(&dist[u])
					if du == graph.InfWeightedDist {
						continue
					}
					dsts, ws := g.OutEdges(u)
					for i, v := range dsts {
						cand := du + uint64(ws[i])
						for {
							old := atomic.LoadUint64(&dist[v])
							if old <= cand {
								break
							}
							if atomic.CompareAndSwapUint64(&dist[v], old, cand) {
								wl.Push(cand, uint64(v))
								break
							}
						}
					}
				}
			}
		}()
	}
	wg.Wait()
}
