package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"mrbc/internal/dgalois"
	"mrbc/internal/gen"
	"mrbc/internal/mrbcdist"
	"mrbc/internal/obs"
	"mrbc/internal/partition"
)

// recordRun produces a detail-level trace file from a real 2-host
// mrbcdist run and returns its path plus the run's stats.
func recordRun(t *testing.T) (string, dgalois.Stats) {
	t.Helper()
	g := gen.RMAT(7, 8, 3)
	pt := partition.EdgeCut(g, 2)
	tr := obs.NewTrace(1<<18, obs.LevelDetail)
	sources := []uint32{0, 1, 2, 3, 4, 5, 6, 7}
	_, stats := mrbcdist.Run(g, pt, sources, mrbcdist.Options{BatchSize: 4, Trace: tr})
	if tr.Dropped() != 0 {
		t.Fatalf("trace ring dropped %d events", tr.Dropped())
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := obs.WriteJSONL(f, tr.Events()); err != nil {
		t.Fatal(err)
	}
	return path, stats
}

func run(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut strings.Builder
	code := realMain(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

// TestSummaryMatchesStats pins the acceptance contract: the summary
// totals of a recorded trace are identical to the run's own
// dgalois.Stats accounting.
func TestSummaryMatchesStats(t *testing.T) {
	path, stats := recordRun(t)
	code, out, errOut := run(t, "summary", path)
	if code != 0 {
		t.Fatalf("summary failed (%d): %s", code, errOut)
	}
	for _, want := range []string{
		fmt.Sprintf("pack.bytes      %d\n", stats.Bytes),
		fmt.Sprintf("pack.messages   %d\n", stats.Messages),
		fmt.Sprintf("unpack.bytes    %d\n", stats.Bytes),
		fmt.Sprintf("unpack.messages %d\n", stats.Messages),
		fmt.Sprintf("format.dense    %d\n", stats.Encoding.Dense),
		fmt.Sprintf("format.sparse   %d\n", stats.Encoding.Sparse),
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary output missing %q:\n%s", want, out)
		}
	}
}

// TestImbalanceMatchesStats pins the imbalance pipeline to the
// cluster's LoadImbalance: same groups, same fold order, bit-equal
// ratio.
func TestImbalanceMatchesStats(t *testing.T) {
	path, stats := recordRun(t)
	code, out, errOut := run(t, "imbalance", path)
	if code != 0 {
		t.Fatalf("imbalance failed (%d): %s", code, errOut)
	}
	want := "imbalance.mean " + strconv.FormatFloat(stats.LoadImbalance, 'g', -1, 64) + "\n"
	if !strings.Contains(out, want) {
		t.Fatalf("imbalance output missing %q:\n%s", want, out)
	}
	if !strings.Contains(out, "host  compute") {
		t.Fatalf("imbalance output lacks the per-host table:\n%s", out)
	}
}

func TestRoundsReportsEveryRound(t *testing.T) {
	path, stats := recordRun(t)
	code, out, errOut := run(t, "rounds", path)
	if code != 0 {
		t.Fatalf("rounds failed (%d): %s", code, errOut)
	}
	if !strings.Contains(out, fmt.Sprintf("rounds     %d\n", stats.Rounds)) {
		t.Fatalf("rounds output disagrees with Stats.Rounds = %d:\n%s", stats.Rounds, out)
	}
	if !strings.Contains(out, "critical-path host") {
		t.Fatalf("rounds output lacks the critical-path table:\n%s", out)
	}
}

func TestCheckAcceptsRealTraceAndRejectsCorrupt(t *testing.T) {
	path, _ := recordRun(t)
	code, out, errOut := run(t, "check", path)
	if code != 0 {
		t.Fatalf("check failed on a valid trace (%d): %s", code, errOut)
	}
	if !strings.Contains(out, "round bounds ok") || !strings.Contains(out, "reversal symmetry ok") {
		t.Fatalf("check output incomplete:\n%s", out)
	}

	// Corrupt the trace: shrink one batch's recorded forward span so a
	// forward send overruns it.
	events := mustLoad(t, path)
	for i := range events {
		if events[i].Kind == obs.KindBatch {
			events[i].FwdRounds = 1
		}
	}
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	writeTrace(t, bad, events)
	code, _, errOut = run(t, "check", bad)
	if code == 0 {
		t.Fatal("check accepted a corrupted trace")
	}
	if !strings.Contains(errOut, "bctrace:") {
		t.Fatalf("no diagnostic on corrupted trace: %s", errOut)
	}
}

// TestDiffFixtures drives diff over the committed golden/perturbed
// tracetest fixtures: the golden trace matches itself, and the
// perturbed one diverges with a localized first-event report.
func TestDiffFixtures(t *testing.T) {
	golden := filepath.Join("..", "..", "internal", "tracetest", "testdata", "golden_trace.jsonl")
	perturbed := filepath.Join("..", "..", "internal", "tracetest", "testdata", "perturbed_trace.jsonl")

	code, out, errOut := run(t, "diff", golden, golden)
	if code != 0 {
		t.Fatalf("self-diff failed (%d): %s", code, errOut)
	}
	if !strings.Contains(out, "canonically identical") {
		t.Fatalf("self-diff output: %s", out)
	}

	code, out, _ = run(t, "diff", golden, perturbed)
	if code != 1 {
		t.Fatalf("diff of perturbed trace exited %d, want 1", code)
	}
	if !strings.Contains(out, "diverge at canonical event") {
		t.Fatalf("diff output lacks divergence report:\n%s", out)
	}
	// The perturbation moved a backward send of (v=11, src=1) from
	// round 1 to round 2; the report must surface that event.
	if !strings.Contains(out, "V:11") {
		t.Fatalf("diff did not localize the perturbed event:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := run(t); code != 2 {
		t.Fatal("no-args did not exit 2")
	}
	if code, _, _ := run(t, "bogus"); code != 2 {
		t.Fatal("unknown command did not exit 2")
	}
	if code, _, _ := run(t, "summary"); code != 2 {
		t.Fatal("summary without a file did not exit 2")
	}
	if code, _, _ := run(t, "diff", "only-one.jsonl"); code != 2 {
		t.Fatal("diff with one file did not exit 2")
	}
	if code, _, _ := run(t, "summary", filepath.Join(t.TempDir(), "missing.jsonl")); code != 1 {
		t.Fatal("missing file did not exit 1")
	}
}

func mustLoad(t *testing.T, path string) []obs.Event {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	return events
}

func writeTrace(t *testing.T, path string, events []obs.Event) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := obs.WriteJSONL(f, events); err != nil {
		t.Fatal(err)
	}
}
