package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mrbc/internal/brandes"
	"mrbc/internal/gen"
	"mrbc/internal/graph"
)

func TestEngineBCMatchesBrandesOnSuite(t *testing.T) {
	for name, g := range testGraphs() {
		n := g.NumVertices()
		sources := make([]uint32, n)
		for i := range sources {
			sources[i] = uint32(i)
		}
		want := brandes.SequentialAll(g)
		for _, k := range []int{1, 3, 7, n} {
			got, _ := BC(g, sources, Options{BatchSize: k})
			if !approxEqual(got, want, 1e-9) {
				t.Fatalf("%s k=%d: BC mismatch\n got %v\nwant %v", name, k, got, want)
			}
		}
	}
}

func TestEngineSubsetSources(t *testing.T) {
	g := gen.RMAT(8, 8, 4)
	sources := brandes.FirstKSources(g, 16, 48)
	want := brandes.Sequential(g, sources)
	got, stats := BC(g, sources, Options{BatchSize: 16})
	if !approxEqual(got, want, 1e-9) {
		t.Fatal("subset-source BC mismatch")
	}
	if stats.Batches != 3 {
		t.Fatalf("batches = %d, want 3", stats.Batches)
	}
}

func TestEngineRoundCountMatchesLemma8(t *testing.T) {
	// Per batch: forward <= k + H rounds; backward <= forward.
	g := gen.WebCrawl(7, 6, 2, 20, 3)
	k := 16
	sources := brandes.FirstKSources(g, 0, k)
	_, stats := BC(g, sources, Options{BatchSize: k})
	h := MaxFiniteDistance(g, sources)
	if stats.ForwardRounds > k+int(h) {
		t.Fatalf("forward rounds %d exceed k+H = %d", stats.ForwardRounds, k+int(h))
	}
	if stats.BackwardRounds > stats.ForwardRounds+1 {
		t.Fatalf("backward rounds %d exceed forward %d", stats.BackwardRounds, stats.ForwardRounds)
	}
}

func TestEngineBatchSizeReducesRounds(t *testing.T) {
	// Figure 1's premise: larger k amortizes the per-batch H cost, so
	// total rounds fall as k rises on a non-trivial-diameter graph.
	g := gen.WebCrawl(7, 6, 3, 30, 9)
	sources := brandes.FirstKSources(g, 0, 32)
	_, small := BC(g, sources, Options{BatchSize: 4})
	_, large := BC(g, sources, Options{BatchSize: 32})
	if large.Rounds() >= small.Rounds() {
		t.Fatalf("rounds with k=32 (%d) should be below k=4 (%d)", large.Rounds(), small.Rounds())
	}
}

func TestAPSPBatchMatchesBFS(t *testing.T) {
	g := gen.ErdosRenyi(60, 240, 8)
	batch := []uint32{0, 5, 59, 17}
	dist, sigma, _ := APSPBatch(g, batch)
	for i, s := range batch {
		ref := brandes.SingleSource(g, s)
		for v := 0; v < g.NumVertices(); v++ {
			if dist[i][v] != ref.Dist[v] {
				t.Fatalf("source %d: dist[%d] = %d, want %d", s, v, dist[i][v], ref.Dist[v])
			}
			if ref.Dist[v] != graph.InfDist && math.Abs(sigma[i][v]-ref.Sigma[v]) > 1e-9 {
				t.Fatalf("source %d: sigma[%d] = %v, want %v", s, v, sigma[i][v], ref.Sigma[v])
			}
		}
	}
}

func TestAPSPBatchEmpty(t *testing.T) {
	g := gen.Path(4)
	dist, sigma, stats := APSPBatch(g, nil)
	if dist != nil || sigma != nil || stats.Batches != 0 {
		t.Fatal("empty batch should be a no-op")
	}
}

func TestEngineLabelsSyncedOncePerReachablePair(t *testing.T) {
	// Forward phase synchronizes each (vertex, source) pair exactly
	// once; backward the same. So LabelsSynced == 2 * #reachable pairs.
	g := gen.ErdosRenyi(40, 150, 12)
	sources := brandes.FirstKSources(g, 0, 10)
	_, stats := BC(g, sources, Options{BatchSize: 10})
	var reachable int64
	for _, s := range sources {
		for _, d := range g.BFS(s) {
			if d != graph.InfDist {
				reachable++
			}
		}
	}
	if stats.LabelsSynced != 2*reachable {
		t.Fatalf("LabelsSynced = %d, want %d", stats.LabelsSynced, 2*reachable)
	}
}

func TestEngineSourceOutOfRangePanics(t *testing.T) {
	g := gen.Path(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BC(g, []uint32{5}, Options{})
}

func TestEngineNoSources(t *testing.T) {
	g := gen.Path(5)
	scores, stats := BC(g, nil, Options{})
	for _, s := range scores {
		if s != 0 {
			t.Fatal("expected zero scores with no sources")
		}
	}
	if stats.Batches != 0 {
		t.Fatal("expected zero batches")
	}
}

func TestEngineZeroBatchSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine(gen.Path(3), 0)
}

func TestDistMapOrdering(t *testing.T) {
	var m distMap
	var a shardAlloc
	a.init(8)
	m.add(&a, 3, 5)
	m.add(&a, 1, 2)
	m.add(&a, 4, 5)
	m.add(&a, 0, 9)
	if len(m.dists) != 3 || m.dists[0] != 2 || m.dists[1] != 5 || m.dists[2] != 9 {
		t.Fatalf("dists = %v", m.dists)
	}
	if !m.sets[1].Test(3) || !m.sets[1].Test(4) {
		t.Fatal("distance-5 set wrong")
	}
	m.remove(&a, 3, 5)
	if m.sets[1].Test(3) {
		t.Fatal("remove failed")
	}
	m.remove(&a, 4, 5)
	if len(m.dists) != 2 {
		t.Fatal("empty distance bucket not removed")
	}
}

func TestDistMapRecyclesSets(t *testing.T) {
	var m distMap
	var a shardAlloc
	a.init(4)
	m.add(&a, 1, 3)
	freed := m.sets[0]
	m.remove(&a, 1, 3)
	m.add(&a, 2, 7)
	if m.sets[0] != freed {
		t.Fatal("expected the freed set to be recycled")
	}
	if m.sets[0].Test(1) || !m.sets[0].Test(2) {
		t.Fatal("recycled set has stale bits")
	}
}

func TestDistMapRemoveMissingPanics(t *testing.T) {
	var m distMap
	var a shardAlloc
	a.init(4)
	m.add(&a, 1, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.remove(&a, 2, 3)
}

// Property: engine BC equals Brandes on random graphs with random
// source subsets and random batch sizes.
func TestQuickEngineAgainstBrandes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		b := graph.NewBuilder(n)
		for i := 0; i < rng.Intn(5*n); i++ {
			b.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
		}
		g := b.Build()
		k := 1 + rng.Intn(n)
		var sources []uint32
		for _, s := range rng.Perm(n)[:k] {
			sources = append(sources, uint32(s))
		}
		batch := 1 + rng.Intn(k)
		got, _ := BC(g, sources, Options{BatchSize: batch})
		want := brandes.Sequential(g, sources)
		return approxEqual(got, want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the engine's forward rounds respect k + H for every batch
// (Lemma 8 at the engine level).
func TestQuickEngineRoundBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		b := graph.NewBuilder(n)
		for i := 0; i < rng.Intn(4*n); i++ {
			b.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
		}
		g := b.Build()
		k := 1 + rng.Intn(n)
		sources := make([]uint32, k)
		for i, s := range rng.Perm(n)[:k] {
			sources[i] = uint32(s)
		}
		_, _, stats := APSPBatch(g, sources)
		h := MaxFiniteDistance(g, sources)
		return stats.ForwardRounds <= k+int(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineBC(b *testing.B) {
	g := gen.RMAT(11, 8, 1)
	sources := brandes.FirstKSources(g, 0, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = BC(g, sources, Options{BatchSize: 32})
	}
}

// The single-host engine executes the same pipelining schedule as the
// exact CONGEST simulation: forward rounds agree up to the one silent
// round the CONGEST quiescence detector needs.
func TestEngineRoundsMatchExactCongest(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		n := 5 + rng.Intn(40)
		b := graph.NewBuilder(n)
		for i := 0; i < rng.Intn(4*n); i++ {
			b.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
		}
		g := b.Build()
		k := 1 + rng.Intn(n)
		sources := make([]uint32, k)
		for i, s := range rng.Perm(n)[:k] {
			sources[i] = uint32(s)
		}
		_, _, engStats := APSPBatch(g, sources)
		congest := CongestAPSP(g, CongestOptions{Sources: sources, Mode: ModeQuiesce})
		diff := congest.Stats.ForwardRounds - engStats.ForwardRounds
		if diff < 0 || diff > 1 {
			t.Fatalf("trial %d: engine %d rounds vs CONGEST %d",
				trial, engStats.ForwardRounds, congest.Stats.ForwardRounds)
		}
	}
}

func TestEngineParallelBatchesMatchSequential(t *testing.T) {
	g := gen.RMAT(9, 8, 31)
	sources := brandes.FirstKSources(g, 0, 64)
	seq, seqStats := BC(g, sources, Options{BatchSize: 8})
	par, parStats := BC(g, sources, Options{BatchSize: 8, Parallelism: 4})
	if !approxEqual(seq, par, 1e-9) {
		t.Fatal("parallel batches changed BC")
	}
	if seqStats.Batches != parStats.Batches || seqStats.LabelsSynced != parStats.LabelsSynced {
		t.Fatalf("stats diverged: %+v vs %+v", seqStats, parStats)
	}
}

func TestEngineAccessors(t *testing.T) {
	g := gen.Path(4)
	e := NewEngine(g, 3)
	if e.K() != 3 {
		t.Fatalf("K = %d", e.K())
	}
	if e.Graph() != g {
		t.Fatal("Graph accessor wrong")
	}
	var stats RunStats
	stats.ForwardRounds, stats.BackwardRounds = 6, 4
	if stats.RoundsPerSource(5) != 2 {
		t.Fatalf("RoundsPerSource = %v", stats.RoundsPerSource(5))
	}
	if stats.RoundsPerSource(0) != 0 {
		t.Fatal("RoundsPerSource(0) should be 0")
	}
}

func TestEngineMergePrimitivesDirect(t *testing.T) {
	// Exercise the cross-host reduction primitives directly: a master
	// merging mirror partials must min distances and sum σ at the
	// minimum.
	g := gen.Path(3)
	e := NewEngine(g, 2)
	e.MergePartial(1, 0, 4, 2.0) // first partial inserts
	e.MergePartial(1, 0, 4, 3.0) // equal dist: sums
	if d := e.Get(1, 0); d.Dist != 4 || d.Sigma != 5 {
		t.Fatalf("after equal-dist merges: %+v", d)
	}
	e.MergePartial(1, 0, 2, 1.5) // better dist: replaces
	if d := e.Get(1, 0); d.Dist != 2 || d.Sigma != 1.5 {
		t.Fatalf("after improving merge: %+v", d)
	}
	e.MergePartial(1, 0, 9, 7.0) // worse dist: ignored
	if d := e.Get(1, 0); d.Dist != 2 || d.Sigma != 1.5 {
		t.Fatalf("worse merge changed state: %+v", d)
	}

	// Candidates carry distance only; σ partials stay local.
	if !e.MergeCandidate(2, 1, 5) {
		t.Fatal("insert candidate should report a change")
	}
	if e.MergeCandidate(2, 1, 7) {
		t.Fatal("worse candidate should report no change")
	}
	if !e.MergeCandidate(2, 1, 3) {
		t.Fatal("better candidate should report a change")
	}
	if d := e.Get(2, 1); d.Dist != 3 || d.Sigma != 0 {
		t.Fatalf("candidate state: %+v", d)
	}

	e.AddDeltaPartial(2, 1, 1.25)
	e.AddDeltaPartial(2, 1, 0.75)
	if got := e.DeltaPartial(2, 1); got != 2 {
		t.Fatalf("delta partial = %v", got)
	}
}

func TestTheoreticalRoundBoundAllModes(t *testing.T) {
	if TheoreticalRoundBound(10, 10, ModeFixed2N, 0, 0) != 20 {
		t.Fatal("fixed mode")
	}
	if TheoreticalRoundBound(10, 10, ModeFinalizer, graph.InfDist, 0) != 20 {
		t.Fatal("finalizer with infinite diameter")
	}
	if TheoreticalRoundBound(100, 100, ModeFinalizer, 3, 0) != 115 {
		t.Fatal("finalizer n+5D")
	}
	if TheoreticalRoundBound(10, 10, ModeFinalizer, 9, 0) != 20 {
		t.Fatal("finalizer 2n cutoff")
	}
	if TheoreticalRoundBound(10, 4, ModeQuiesce, 0, 6) != 11 {
		t.Fatal("quiesce k+H+1")
	}
	if TheoreticalRoundBound(10, 4, ModeQuiesce, 0, graph.InfDist) != 21 {
		t.Fatal("quiesce unknown H")
	}
	var stats CongestStats
	stats.ForwardRounds, stats.BackwardRounds = 3, 4
	stats.ForwardMessages, stats.BackwardMessages = 10, 20
	if stats.Rounds() != 7 || stats.Messages() != 30 {
		t.Fatal("stats accessors")
	}
}
