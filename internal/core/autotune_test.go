package core

import (
	"runtime"
	"testing"

	"mrbc/internal/brandes"
	"mrbc/internal/gen"
)

// TestAutotuneWorkersCrossover pins the crossover heuristic: worker
// count grows with the per-batch label mass n·k, from 1 below the
// crossover up to the GOMAXPROCS cap.
func TestAutotuneWorkersCrossover(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)

	tiny := gen.RoadGrid(8, 8, 1) // 64 vertices × 8 = 512 labels
	if w := AutotuneWorkers(tiny, 8); w != 1 {
		t.Fatalf("tiny graph (512 labels): %d workers, want 1", w)
	}
	mid := gen.RoadGrid(100, 100, 1) // 10k vertices × 8 = 80k labels ≈ 2.4 crossovers
	if w := AutotuneWorkers(mid, 8); w < 2 || w > 4 {
		t.Fatalf("mid graph (80k labels): %d workers, want 2-4", w)
	}
	big := gen.RoadGrid(200, 200, 1) // 40k vertices × 32 = 1.28M labels
	if w := AutotuneWorkers(big, 32); w != 8 {
		t.Fatalf("big graph (1.28M labels): %d workers, want GOMAXPROCS cap 8", w)
	}
}

// TestAutotunedTinyFrontierNeverFansOut pins the satellite property end
// to end: with Workers unset (autotuned) on a tiny graph, the run picks
// one worker and executes zero pool rounds — two independent guards
// (the crossover and the inline gate) both keep tiny frontiers serial.
func TestAutotunedTinyFrontierNeverFansOut(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)

	g := gen.RoadGrid(5, 5, 3)
	sources := []uint32{0, 4, 8, 12, 16, 20, 24}
	_, stats := BC(g, sources, Options{BatchSize: 8}) // Workers: 0 → autotune
	if stats.ParallelRounds != 0 {
		t.Fatalf("autotuned tiny run fanned out: %d parallel rounds", stats.ParallelRounds)
	}
	if stats.Steals != 0 || stats.FailedSteals != 0 {
		t.Fatalf("autotuned tiny run touched the pool: %+v", stats)
	}
}

func TestAutotuneReturnsACandidate(t *testing.T) {
	g := gen.RMAT(8, 8, 2)
	sources := brandes.FirstKSources(g, 0, 32)
	candidates := []int{4, 8, 16}
	k := AutotuneBatch(g, sources, candidates, 16)
	found := false
	for _, c := range candidates {
		if c == k {
			found = true
		}
	}
	if !found {
		t.Fatalf("autotune returned %d, not among %v", k, candidates)
	}
}

func TestAutotuneDefaults(t *testing.T) {
	g := gen.RMAT(7, 8, 3)
	sources := brandes.FirstKSources(g, 0, 16)
	k := AutotuneBatch(g, sources, nil, 0)
	if k != 16 && k != 32 && k != 64 && k != 128 {
		t.Fatalf("autotune with defaults returned %d", k)
	}
}

func TestAutotuneNoSources(t *testing.T) {
	g := gen.Path(4)
	if k := AutotuneBatch(g, nil, []int{7, 9}, 8); k != 7 {
		t.Fatalf("empty sources should return the first candidate, got %d", k)
	}
}

func TestAutotuneSkipsNonPositiveCandidates(t *testing.T) {
	g := gen.Path(6)
	sources := brandes.FirstKSources(g, 0, 4)
	if k := AutotuneBatch(g, sources, []int{0, -3, 2}, 4); k != 2 {
		t.Fatalf("autotune returned %d, want 2", k)
	}
}
