package mrbc

import (
	"fmt"
	"os"
	"time"

	"mrbc/internal/brandes"
	"mrbc/internal/graph"
	"mrbc/internal/mfbc"
)

// Weighted-graph support. The paper's own algorithms target unweighted
// graphs (MRBC's pipelining schedule is defined over hop counts), but
// two of its baselines support positive edge weights (§5: "note that
// ABBC and MFBC can also handle weighted graphs"); this file exposes
// the weighted engines: Dijkstra-based Brandes, asynchronous weighted
// ABBC, and weighted Maximal-Frontier BC.

// WeightedGraph is a directed graph with positive integer edge weights.
type WeightedGraph = graph.Weighted

// WeightedEdge is an explicit weighted edge for construction.
type WeightedEdge = graph.WeightedEdge

// InfWeightedDist marks an unreachable vertex in weighted distance
// arrays.
const InfWeightedDist = graph.InfWeightedDist

// FromWeightedEdges builds a weighted graph with n vertices. Self
// loops are dropped, parallel edges keep the smallest weight, and zero
// weights are rejected.
func FromWeightedEdges(n int, edges []WeightedEdge) *WeightedGraph {
	return graph.FromWeightedEdges(n, edges)
}

// UnitWeights lifts an unweighted graph to a weighted one with unit
// edge weights; weighted BC on the result equals unweighted BC.
func UnitWeights(g *Graph) *WeightedGraph { return graph.UnitWeights(g) }

// LoadDIMACS reads a weighted graph in the 9th DIMACS Implementation
// Challenge shortest-path format (the format real road networks such
// as the paper's road-europe are distributed in).
func LoadDIMACS(path string) (*WeightedGraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadDIMACS(f)
}

// BetweennessWeighted computes weighted betweenness centrality
// restricted to the given sources. Supported algorithms: Brandes
// (Dijkstra-based, the default), ABBC (asynchronous), and MFBC
// (Bellman-Ford frontier products).
func BetweennessWeighted(g *WeightedGraph, sources []uint32, opts Options) (*Result, error) {
	if opts.Algorithm == "" {
		opts.Algorithm = Brandes
	}
	n := g.NumVertices()
	for _, s := range sources {
		if int(s) >= n {
			return nil, fmt.Errorf("mrbc: source %d out of range [0,%d)", s, n)
		}
	}
	start := time.Now()
	res := &Result{}
	switch opts.Algorithm {
	case Brandes:
		if opts.Workers > 1 {
			res.Scores = brandes.WeightedParallel(g, sources, opts.Workers)
		} else {
			res.Scores = brandes.WeightedSequential(g, sources)
		}
	case ABBC:
		res.Scores = brandes.WeightedAsync(g, sources, brandes.AsyncConfig{
			Workers:   opts.Workers,
			ChunkSize: opts.ChunkSize,
		})
	case MFBC:
		res.Scores = mfbc.WeightedBC(g, sources, mfbc.WeightedOptions{Workers: opts.Workers})
	default:
		return nil, fmt.Errorf("mrbc: algorithm %q does not support weighted graphs", opts.Algorithm)
	}
	res.Duration = time.Since(start)
	return res, nil
}

// ApproximateBetweenness estimates exact BC by uniform source sampling
// scaled by n/k (Bader et al., the estimator behind the paper's §5.1
// methodology). It returns the estimates and the number of samples
// used; with Adaptive set, sampling stops once the running maximum
// stabilizes.
func ApproximateBetweenness(g *Graph, opts ApproxOptions) ([]float64, int) {
	return brandes.ApproximateBC(g, brandes.ApproxOptions(opts))
}

// ApproxOptions configures ApproximateBetweenness.
type ApproxOptions struct {
	Samples   int
	Seed      int64
	Workers   int
	Adaptive  bool
	Tolerance float64
}
