//go:build race

package bench

// RaceEnabled reports whether this binary was built with the race
// detector. Wall-time comparisons against committed baselines are
// meaningless under its 10-20x slowdown, so guard tests relax or skip
// them while keeping the exact volume checks.
const RaceEnabled = true
