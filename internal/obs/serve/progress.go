package serve

import "mrbc/internal/obs"

// HostProgress is one host's live position within the current run.
type HostProgress struct {
	Host int `json:"host"`
	// LastRound is the most recent BSP round whose compute phase this
	// host finished (dgalois_host_last_round).
	LastRound int64 `json:"last_round"`
	// Bytes and Messages are the host's cumulative sent volume.
	Bytes    int64 `json:"bytes"`
	Messages int64 `json:"messages"`
	// Alive is false once the cluster has declared the host dead
	// (dgalois_host_alive). A dead host is frozen at its last round
	// forever, so it is excluded from the straggler-lag spread — lag
	// measures slow hosts, not dead ones.
	Alive bool `json:"alive"`
}

// WorkerProgress is one intra-host engine worker's cumulative
// scheduler counters (flat index host·EngineWorkers+worker, matching
// the mrbc_worker_* counter vectors).
type WorkerProgress struct {
	Worker int   `json:"worker"`
	Tasks  int64 `json:"tasks"`
	Steals int64 `json:"steals"`
}

// Progress is the derived live-progress view /progressz serves: where
// the run is (engine phase counters) and how the hosts are spread
// across it (per-host rounds and volume, straggler lag), plus — when
// the engine ran intra-host workers — how the work spread within hosts.
type Progress struct {
	// Engine identifies which engine's gauges were found: "mrbc",
	// "sbbc", "vprog", or "" when only the cluster substrate reported.
	Engine string `json:"engine"`
	// Round is the cluster's current BSP round (dgalois_round).
	Round int64 `json:"round"`
	// Batch is the engine's current batch (mrbc) or source index
	// (sbbc); -1 when the engine doesn't batch.
	Batch int64 `json:"batch"`
	// EngineRound is the engine's phase-local round: mrbc_round,
	// sbbc_level, or vprog_round.
	EngineRound int64 `json:"engine_round"`
	// Frontier is the engine's current activity measure: due pairs
	// (mrbc), relaxed vertices (sbbc), or active vertices (vprog).
	Frontier int64 `json:"frontier"`
	// Backward is true while an mrbc batch runs its backward phase.
	Backward bool `json:"backward"`
	// Hosts lists per-host positions, ascending host order.
	Hosts []HostProgress `json:"hosts,omitempty"`
	// Epoch is the cluster membership epoch (dgalois_epoch): 0 for a
	// first life, bumped by the elastic coordinator on every recovery.
	Epoch int64 `json:"epoch"`
	// DeadHosts counts hosts the cluster has declared dead this epoch.
	DeadHosts int `json:"dead_hosts,omitempty"`
	// StragglerLag is the spread of the per-host last-completed-round
	// vector (max − min) across LIVE hosts: 0 when every live host is at
	// the same round, ≥1 while at least one lags the front-runner. Dead
	// hosts are excluded — a killed host would otherwise report as an
	// ever-growing lag for the rest of the run.
	StragglerLag int64 `json:"straggler_lag"`
	// Workers lists per-engine-worker scheduler totals, present only
	// when the run used intra-host workers (mrbc EngineWorkers > 1).
	Workers []WorkerProgress `json:"workers,omitempty"`
	// WorkerSkew is the max/mean ratio of per-worker task counts: 1.0
	// when balanced (or when fewer than two workers reported), larger
	// when stealing left residual intra-host skew.
	WorkerSkew float64 `json:"worker_skew,omitempty"`
}

// ProgressFrom derives the live-progress view from a registry
// snapshot. It is a pure function of the snapshot, so tests can feed
// synthetic snapshots and the handler stays trivial.
func ProgressFrom(s obs.Snapshot) Progress {
	p := Progress{Batch: -1}
	p.Round = s.Gauges["dgalois_round"]
	switch {
	case hasGauge(s, "mrbc_round"):
		p.Engine = "mrbc"
		p.Batch = s.Gauges["mrbc_batch"]
		p.EngineRound = s.Gauges["mrbc_round"]
		p.Frontier = s.Gauges["mrbc_frontier"]
		p.Backward = s.Gauges["mrbc_backward"] != 0
	case hasGauge(s, "sbbc_level"):
		p.Engine = "sbbc"
		p.Batch = s.Gauges["sbbc_source"]
		p.EngineRound = s.Gauges["sbbc_level"]
		p.Frontier = s.Gauges["sbbc_frontier"]
	case hasGauge(s, "vprog_round"):
		p.Engine = "vprog"
		p.EngineRound = s.Gauges["vprog_round"]
		p.Frontier = s.Gauges["vprog_active"]
	}
	p.Epoch = s.Gauges["dgalois_epoch"]
	rounds := s.GaugeVecs["dgalois_host_last_round"]
	bytes := s.CounterVecs["dgalois_host_bytes_total"]
	msgs := s.CounterVecs["dgalois_host_messages_total"]
	alive := s.GaugeVecs["dgalois_host_alive"]
	isAlive := func(h int) bool {
		// Runs predating the liveness gauge report no vector at all:
		// treat every host as alive rather than as dead.
		return h >= len(alive.Values) || alive.Values[h] != 0
	}
	var first = true
	var lo, hi int64
	for h := 0; h < len(rounds.Values); h++ {
		hp := HostProgress{Host: h, LastRound: rounds.Values[h], Alive: isAlive(h)}
		if h < len(bytes.Values) {
			hp.Bytes = bytes.Values[h]
		}
		if h < len(msgs.Values) {
			hp.Messages = msgs.Values[h]
		}
		p.Hosts = append(p.Hosts, hp)
		if !hp.Alive {
			p.DeadHosts++
			continue
		}
		if first {
			lo, hi, first = hp.LastRound, hp.LastRound, false
		} else {
			lo, hi = min(lo, hp.LastRound), max(hi, hp.LastRound)
		}
	}
	p.StragglerLag = hi - lo
	wt := s.CounterVecs["mrbc_worker_tasks_total"]
	wst := s.CounterVecs["mrbc_worker_steals_total"]
	var sum, peak int64
	for i, t := range wt.Values {
		wp := WorkerProgress{Worker: i, Tasks: t}
		if i < len(wst.Values) {
			wp.Steals = wst.Values[i]
		}
		p.Workers = append(p.Workers, wp)
		sum += t
		peak = max(peak, t)
	}
	if len(wt.Values) >= 2 && sum > 0 {
		p.WorkerSkew = float64(peak) * float64(len(wt.Values)) / float64(sum)
	} else if len(wt.Values) > 0 {
		p.WorkerSkew = 1.0
	}
	return p
}

func hasGauge(s obs.Snapshot, name string) bool {
	_, ok := s.Gauges[name]
	return ok
}
