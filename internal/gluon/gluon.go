// Package gluon implements the communication substrate the paper's
// implementation is built on (Dathathri et al., PLDI'18), specialized
// to what the BC algorithms need:
//
//   - the proxy topology: for every ordered host pair, the list of
//     vertices with a proxy on the sender whose master is on the
//     receiver (reduce direction) and vice versa (broadcast direction);
//   - update tracking with compressed metadata: a sync message is a
//     bitvector over the pair's shared-vertex list marking which
//     proxies carry updates, followed by one payload per marked proxy
//     ("Gluon ... compresses the metadata that identifies the proxies
//     whose labels are sent", §4.1/§5.3);
//   - reduce (mirrors -> master) followed by broadcast (master ->
//     mirrors), the all-reduce pattern of §4.1.
//
// Payload encoding is left to the caller via Writer/Reader so each
// algorithm serializes exactly the fields it synchronizes.
package gluon

import (
	"encoding/binary"
	"fmt"
	"math"

	"mrbc/internal/bitset"
	"mrbc/internal/partition"
)

// Topology precomputes, for a partitioning, the shared-vertex lists
// every ordered host pair synchronizes over.
type Topology struct {
	pt *partition.Partitioning
	// mirrorsByMaster[a][b]: local IDs (on host a) of proxies whose
	// master is host b, ascending; empty when a == b.
	mirrorsByMaster [][][]uint32
	// masterSide[a][b]: local IDs (on host b's MASTER side) matching
	// mirrorsByMaster[a][b] entry-for-entry, i.e., the same vertices
	// translated to host b's local IDs.
	masterSide [][][]uint32
}

// NewTopology builds the proxy topology for a partitioning.
func NewTopology(pt *partition.Partitioning) *Topology {
	t := &Topology{pt: pt}
	h := pt.NumHosts
	t.mirrorsByMaster = make([][][]uint32, h)
	t.masterSide = make([][][]uint32, h)
	for a := 0; a < h; a++ {
		t.mirrorsByMaster[a] = make([][]uint32, h)
		t.masterSide[a] = make([][]uint32, h)
	}
	for a, p := range pt.Parts {
		for l, gid := range p.GlobalID {
			m := int(pt.MasterOf[gid])
			if m == a {
				continue
			}
			ml, ok := pt.Parts[m].LocalID(gid)
			if !ok {
				panic(fmt.Sprintf("gluon: master host %d lacks proxy for vertex %d", m, gid))
			}
			t.mirrorsByMaster[a][m] = append(t.mirrorsByMaster[a][m], uint32(l))
			t.masterSide[a][m] = append(t.masterSide[a][m], ml)
		}
	}
	return t
}

// MirrorList returns the local IDs on host a of the proxies mastered
// by host b (the reduce-direction shared list). The returned slice
// must not be modified.
func (t *Topology) MirrorList(a, b int) []uint32 { return t.mirrorsByMaster[a][b] }

// MasterList returns the host-b local IDs matching MirrorList(a, b)
// entry for entry.
func (t *Topology) MasterList(a, b int) []uint32 { return t.masterSide[a][b] }

// Partitioning returns the underlying partitioning.
func (t *Topology) Partitioning() *partition.Partitioning { return t.pt }

// Writer serializes payloads into a sync buffer.
type Writer struct{ buf []byte }

// Bytes returns the accumulated buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// U32 appends a uint32.
func (w *Writer) U32(x uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], x)
	w.buf = append(w.buf, b[:]...)
}

// U64 appends a uint64.
func (w *Writer) U64(x uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], x)
	w.buf = append(w.buf, b[:]...)
}

// F64 appends a float64.
func (w *Writer) F64(x float64) { w.U64(math.Float64bits(x)) }

// Reader deserializes a sync buffer.
type Reader struct {
	buf []byte
	off int
}

// NewReader wraps a buffer.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// U32 reads a uint32.
func (r *Reader) U32() uint32 {
	if r.off+4 > len(r.buf) {
		panic("gluon: truncated sync buffer")
	}
	x := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return x
}

// U64 reads a uint64.
func (r *Reader) U64() uint64 {
	if r.off+8 > len(r.buf) {
		panic("gluon: truncated sync buffer")
	}
	x := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return x
}

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Remaining reports the unread byte count.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// EncodeUpdates builds a sync message over a shared list of listLen
// proxies: a length-prefixed bitvector marking the updated positions,
// then each marked position's payload in ascending order (written by
// the emit callback). Returns nil when no positions are marked, so the
// caller sends nothing — Gluon "avoids resending labels that have not
// been updated".
func EncodeUpdates(listLen int, marked *bitset.Set, emit func(pos int, w *Writer)) []byte {
	if marked.None() {
		return nil
	}
	if marked.Len() != listLen {
		panic("gluon: marked bitvector does not match shared list length")
	}
	w := &Writer{}
	w.U32(uint32(listLen))
	for _, word := range marked.Words() {
		w.U64(word)
	}
	marked.ForEach(func(pos int) bool {
		emit(pos, w)
		return true
	})
	return w.Bytes()
}

// DecodeUpdates parses a message produced by EncodeUpdates over the
// same shared list, calling apply for every marked position in
// ascending order.
func DecodeUpdates(listLen int, data []byte, apply func(pos int, r *Reader)) {
	rd := NewReader(data)
	if got := int(rd.U32()); got != listLen {
		panic(fmt.Sprintf("gluon: shared list length mismatch: message %d, local %d", got, listLen))
	}
	marked := bitset.New(listLen)
	words := marked.Words()
	for i := range words {
		words[i] = rd.U64()
	}
	marked.ForEach(func(pos int) bool {
		apply(pos, rd)
		return true
	})
	if rd.Remaining() != 0 {
		panic(fmt.Sprintf("gluon: %d trailing bytes in sync buffer", rd.Remaining()))
	}
}
