package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// File formats.
//
// Text format ("edge list"): lines of "u v" with '#' comments and blank
// lines ignored; an optional header line "n <vertices>" fixes the
// vertex count (otherwise it is 1 + the largest ID seen).
//
// Binary format: a compact CSR dump, little-endian:
//
//	magic  [8]byte  "MRBCGRPH"
//	n      uint64
//	m      uint64
//	offsets[n+1] uint64
//	dsts   [m]    uint32
//
// The binary format mirrors the Galois .gr style of shipping graphs as
// pre-built CSR so large inputs load without re-sorting.

var binaryMagic = [8]byte{'M', 'R', 'B', 'C', 'G', 'R', 'P', 'H'}

// ErrBadFormat reports a malformed graph file.
var ErrBadFormat = errors.New("graph: malformed file")

// WriteText writes the graph as a text edge list with a header.
func (g *Graph) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.NumVertices()); err != nil {
		return err
	}
	var err error
	g.Edges(func(u, v uint32) {
		if err == nil {
			_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
		}
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadText parses the text edge-list format.
func ReadText(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var edges [][2]uint32
	n := -1
	maxID := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if fields[0] == "n" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("%w: line %d: bad header", ErrBadFormat, line)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 0 {
				return nil, fmt.Errorf("%w: line %d: bad vertex count %q", ErrBadFormat, line, fields[1])
			}
			n = v
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("%w: line %d: expected 'u v'", ErrBadFormat, line)
		}
		u, err1 := strconv.ParseUint(fields[0], 10, 32)
		v, err2 := strconv.ParseUint(fields[1], 10, 32)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("%w: line %d: bad vertex ID", ErrBadFormat, line)
		}
		if int(u) > maxID {
			maxID = int(u)
		}
		if int(v) > maxID {
			maxID = int(v)
		}
		edges = append(edges, [2]uint32{uint32(u), uint32(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		n = maxID + 1
	} else if maxID >= n {
		return nil, fmt.Errorf("%w: vertex ID %d exceeds declared count %d", ErrBadFormat, maxID, n)
	}
	return FromEdges(n, edges), nil
}

// WriteBinary writes the compact CSR dump.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	le := binary.LittleEndian
	var buf [8]byte
	writeU64 := func(x uint64) error {
		le.PutUint64(buf[:], x)
		_, err := bw.Write(buf[:])
		return err
	}
	if err := writeU64(uint64(g.NumVertices())); err != nil {
		return err
	}
	if err := writeU64(uint64(g.NumEdges())); err != nil {
		return err
	}
	for _, o := range g.offsets {
		if err := writeU64(uint64(o)); err != nil {
			return err
		}
	}
	var b4 [4]byte
	for _, d := range g.dsts {
		le.PutUint32(b4[:], d)
		if _, err := bw.Write(b4[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the compact CSR dump and validates its structure.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: missing magic: %v", ErrBadFormat, err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, magic[:])
	}
	le := binary.LittleEndian
	var buf [8]byte
	readU64 := func() (uint64, error) {
		_, err := io.ReadFull(br, buf[:])
		return le.Uint64(buf[:]), err
	}
	n64, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrBadFormat)
	}
	m64, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrBadFormat)
	}
	const maxReasonable = 1 << 40
	if n64 > maxReasonable || m64 > maxReasonable {
		return nil, fmt.Errorf("%w: implausible sizes n=%d m=%d", ErrBadFormat, n64, m64)
	}
	n, m := int(n64), int64(m64)
	// Grow the arrays by appending as bytes actually arrive rather
	// than trusting the header's n and m for an up-front allocation: a
	// crafted 24-byte file declaring n = 2^40 must fail on the first
	// missing offset, not commit terabytes first. Memory stays
	// proportional to input read so far.
	const allocChunk = 1 << 16
	capHint := func(declared int64) int {
		if declared < allocChunk {
			return int(declared)
		}
		return allocChunk
	}
	offsets := make([]int64, 0, capHint(int64(n)+1))
	for i := 0; i <= n; i++ {
		o, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("%w: truncated offsets", ErrBadFormat)
		}
		offsets = append(offsets, int64(o))
	}
	if offsets[0] != 0 || offsets[n] != m {
		return nil, fmt.Errorf("%w: inconsistent offsets", ErrBadFormat)
	}
	for i := 0; i < n; i++ {
		if offsets[i] > offsets[i+1] {
			return nil, fmt.Errorf("%w: decreasing offsets at %d", ErrBadFormat, i)
		}
	}
	dsts := make([]uint32, 0, capHint(m))
	var b4 [4]byte
	for i := int64(0); i < m; i++ {
		if _, err := io.ReadFull(br, b4[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated edges", ErrBadFormat)
		}
		d := le.Uint32(b4[:])
		if int(d) >= n {
			return nil, fmt.Errorf("%w: edge target %d out of range", ErrBadFormat, d)
		}
		dsts = append(dsts, d)
	}
	g := &Graph{offsets: offsets, dsts: dsts}
	g.EnsureInEdges()
	return g, nil
}

// Load reads a graph from path, choosing the format by extension:
// ".gr"/".bin" binary, anything else text.
func Load(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".gr") || strings.HasSuffix(path, ".bin") {
		return ReadBinary(f)
	}
	return ReadText(f)
}

// Save writes a graph to path, choosing the format by extension as in
// Load.
func (g *Graph) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".gr") || strings.HasSuffix(path, ".bin") {
		return g.WriteBinary(f)
	}
	return g.WriteText(f)
}
