package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"sync"
)

// StreamSink persists a trace to disk while it is being recorded, so a
// host killed mid-run leaves a parseable partial trace for post-mortem
// merge instead of the nothing an end-of-job dump would. Attach it to a
// Trace with SetTee(sink.Chan()): Emit copies each event into the
// channel buffer (no allocation, preserving the zero-alloc Exchange
// pin) and a single writer goroutine drains it to the file.
//
// Durability model: the header is written and fsynced at open, every
// event is written as one complete JSONL line in one write call (so a
// SIGKILL never tears a line across writes), and the file is fsynced
// whenever the writer catches up with the channel — the sink is at
// most one burst behind the engine. Flush forces that synchronously
// (for SIGTERM handlers); Close drains, fsyncs, and closes.
type StreamSink struct {
	ch    chan Event
	flush chan chan error
	done  chan struct{}
	f     *os.File

	// err is owned by the writer goroutine until done closes.
	err error

	closeOnce sync.Once
	closeErr  error
}

// streamBuffer is the tee channel capacity: the burst the engine can
// emit while the writer is inside an fsync without blocking Emit.
const streamBuffer = 1024

// NewStreamSink creates (truncating) the file at path, writes and
// fsyncs the header line, and starts the writer goroutine.
func NewStreamSink(path string, header Event) (*StreamSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	s := &StreamSink{
		ch:    make(chan Event, streamBuffer),
		flush: make(chan chan error),
		done:  make(chan struct{}),
		f:     f,
	}
	s.write(header)
	s.sync()
	if s.err != nil {
		f.Close()
		return nil, s.err
	}
	go s.run()
	return s, nil
}

// Chan returns the channel to pass to Trace.SetTee.
func (s *StreamSink) Chan() chan<- Event { return s.ch }

func (s *StreamSink) write(e Event) {
	if s.err != nil {
		return
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(&e); err != nil {
		s.err = err
		return
	}
	if _, err := s.f.Write(buf.Bytes()); err != nil {
		s.err = err
	}
}

func (s *StreamSink) sync() {
	if s.err != nil {
		return
	}
	if err := s.f.Sync(); err != nil {
		s.err = err
	}
}

func (s *StreamSink) run() {
	defer close(s.done)
	for {
		select {
		case e, ok := <-s.ch:
			if !ok {
				s.sync()
				return
			}
			s.write(e)
			if len(s.ch) == 0 {
				s.sync()
			}
		case ack := <-s.flush:
			s.drain()
			s.sync()
			ack <- s.err
		}
	}
	// Note: after a write error the loop keeps draining (write no-ops),
	// so Emit through the tee never blocks forever on a dead sink.
}

func (s *StreamSink) drain() {
	for {
		select {
		case e, ok := <-s.ch:
			if !ok {
				return
			}
			s.write(e)
		default:
			return
		}
	}
}

// Flush synchronously drains buffered events and fsyncs the file: the
// durability point SIGTERM/job-error paths call before the process can
// die. Safe to call concurrently with Emit and after Close.
func (s *StreamSink) Flush() error {
	ack := make(chan error, 1)
	select {
	case s.flush <- ack:
		return <-ack
	case <-s.done:
		return s.err
	}
}

// Close drains remaining events, fsyncs, and closes the file. Detach
// the tee (or stop emitting) before calling: an Emit racing Close's
// channel close panics, the same contract as any channel-owner close.
// Idempotent; returns the first error the sink hit.
func (s *StreamSink) Close() error {
	s.closeOnce.Do(func() {
		close(s.ch)
		<-s.done
		s.closeErr = s.err
		if err := s.f.Close(); s.closeErr == nil {
			s.closeErr = err
		}
	})
	return s.closeErr
}
