// Package mfbc implements Maximal-Frontier Betweenness Centrality
// (Solomonik, Besta, Vella, Hoefler — SC'17), the sparse-matrix
// baseline of the paper's evaluation. BC is phrased as frontier
// products over two semirings:
//
//   - Forward: a Bellman-Ford-style sweep over the (min, +) semiring on
//     (distance, path-count) pairs. Each iteration multiplies the
//     adjacency pattern by the current frontier; entries whose tentative
//     distance improves (or whose count grows at an equal distance) form
//     the next frontier. On unweighted graphs the sweep settles one BFS
//     level per iteration.
//   - Backward: dependency accumulation over a (+, ·) algebra on the
//     transposed pattern, masked by distance so contributions flow from
//     the deepest frontier inward.
//
// Sources are processed in batches of k, like MRBC and the original
// MFBC ("MFBC performs best when k is the highest power-of-2 for which
// the graph fits in memory", §5.2).
package mfbc

import (
	"fmt"
	"runtime"

	"mrbc/internal/graph"
	"mrbc/internal/matrix"
)

// pathElem is an element of the forward (min, +, count) algebra.
type pathElem struct {
	dist  uint32
	count float64
}

// forwardSemiring combines tentative shortest-path elements: Plus takes
// the smaller distance and sums counts on ties; Extend lengthens a path
// by one unit edge.
var forwardSemiring = matrix.Semiring[pathElem]{
	Identity: pathElem{dist: graph.InfDist},
	Plus: func(a, b pathElem) pathElem {
		switch {
		case a.dist < b.dist:
			return a
		case b.dist < a.dist:
			return b
		case a.dist == graph.InfDist:
			return a
		default:
			return pathElem{dist: a.dist, count: a.count + b.count}
		}
	},
	Extend: func(a pathElem) pathElem {
		if a.dist == graph.InfDist {
			return a
		}
		return pathElem{dist: a.dist + 1, count: a.count}
	},
}

// Options configures an MFBC run.
type Options struct {
	// BatchSize is k, the number of simultaneous sources; defaults to
	// 32. The paper picks the largest power of two that fits in memory.
	BatchSize int
	// Workers bounds the source-parallelism; defaults to GOMAXPROCS.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.BatchSize <= 0 {
		o.BatchSize = 32
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Stats reports the frontier-iteration counts of a run (the matrix
// analogue of BSP rounds).
type Stats struct {
	Batches            int
	ForwardIterations  int
	BackwardIterations int
}

// BC computes betweenness centrality restricted to sources.
func BC(g *graph.Graph, sources []uint32, opts Options) ([]float64, Stats) {
	opts = opts.withDefaults()
	n := g.NumVertices()
	for _, s := range sources {
		if int(s) >= n {
			panic(fmt.Sprintf("mfbc: source %d out of range [0,%d)", s, n))
		}
	}
	a := matrix.FromGraph(g)
	at := a.Transpose()
	scores := make([]float64, n)
	var stats Stats
	for start := 0; start < len(sources); start += opts.BatchSize {
		end := start + opts.BatchSize
		if end > len(sources) {
			end = len(sources)
		}
		runBatch(a, at, sources[start:end], scores, opts, &stats)
	}
	return scores, stats
}

func runBatch(a, at *matrix.Pattern, batch []uint32, scores []float64, opts Options, stats *Stats) {
	stats.Batches++
	n := a.Dim()
	k := len(batch)

	// Forward sweeps, one independent tentative vector per source.
	tent := make([]matrix.Vec[pathElem], k)
	iters := make([]int, k)
	maxDist := make([]uint32, k)
	matrix.ParallelOverSources(k, opts.Workers, func(j int) {
		tent[j] = matrix.NewVec(n, forwardSemiring)
		tent[j][batch[j]] = pathElem{dist: 0, count: 1}
		frontier := []uint32{batch[j]}
		prod := matrix.NewVec(n, forwardSemiring)
		var touched []uint32
		for len(frontier) > 0 {
			iters[j]++
			touched = matrix.PushProduct(a, tent[j], frontier, forwardSemiring, prod, touched[:0])
			frontier = frontier[:0]
			for _, v := range touched {
				cand := prod[v]
				prod[v] = forwardSemiring.Identity
				cur := tent[j][v]
				merged := forwardSemiring.Plus(cur, cand)
				// The frontier advances where the product changed the
				// tentative element (improved distance or new counts at
				// the frontier distance).
				if merged.dist != cur.dist {
					tent[j][v] = merged
					frontier = append(frontier, v)
					if merged.dist != graph.InfDist && merged.dist > maxDist[j] {
						maxDist[j] = merged.dist
					}
				} else if merged.dist == cand.dist && merged.count != cur.count {
					// On an unweighted graph every count contribution
					// to a vertex arrives in the iteration that settles
					// its distance; a later equal-distance contribution
					// would require re-pushing deltas (the weighted
					// MFBC machinery, out of scope here).
					panic("mfbc: late count contribution; input must be unweighted")
				}
			}
			frontier = dedup(frontier)
		}
	})

	// Backward sweeps: masked products over the transpose, one distance
	// level per iteration.
	deps := make([]matrix.Vec[float64], k)
	matrix.ParallelOverSources(k, opts.Workers, func(j int) {
		deps[j] = make(matrix.Vec[float64], n)
		if maxDist[j] == 0 {
			return
		}
		// Bucket vertices by distance once.
		buckets := make([][]uint32, maxDist[j]+1)
		for v := 0; v < n; v++ {
			if d := tent[j][v].dist; d != graph.InfDist && d > 0 {
				buckets[d] = append(buckets[d], uint32(v))
			}
		}
		buckets[0] = append(buckets[0], batch[j])
		for level := int(maxDist[j]); level >= 1; level-- {
			// coeff vector: (1+δ)/σ masked to the current level, then a
			// masked product over Aᵀ accumulates σu · coeff into
			// predecessors one level up.
			for _, w := range buckets[level] {
				coeff := (1 + deps[j][w]) / tent[j][w].count
				for _, u := range at.Row(w) {
					if tent[j][u].dist != graph.InfDist && tent[j][u].dist+1 == uint32(level) {
						deps[j][u] += tent[j][u].count * coeff
					}
				}
			}
		}
	})

	// Serial reduction into shared scores.
	for j := 0; j < k; j++ {
		stats.ForwardIterations += iters[j]
		stats.BackwardIterations += int(maxDist[j])
		for v := 0; v < n; v++ {
			if uint32(v) != batch[j] && tent[j][v].dist != graph.InfDist {
				scores[v] += deps[j][v]
			}
		}
	}
}

func dedup(xs []uint32) []uint32 {
	if len(xs) < 2 {
		return xs
	}
	seen := make(map[uint32]bool, len(xs))
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
