// Package gen generates the synthetic input graphs used to reproduce
// the paper's evaluation (Section 5.1, Table 1).
//
// The paper's test suite mixes social networks (livejournal,
// friendster), web-crawls (indochina04, gsh15, clueweb12), a road
// network (road-europe), and synthetic power-law graphs (rmat24,
// kron30). The real datasets are terabyte-scale and unavailable here,
// so each category is replaced by a generator that reproduces the
// property the paper's analysis depends on: degree skew for power-law
// inputs, long-tail distance distributions for web-crawls, and extreme
// diameter with bounded degree for road networks. DESIGN.md Section 3
// records each substitution.
//
// All generators are deterministic for a given seed.
package gen

import (
	"fmt"
	"math/rand"

	"mrbc/internal/graph"
)

// RMAT generates a directed R-MAT graph (Chakrabarti et al.) with 2^scale
// vertices and approximately edgeFactor*2^scale edges, using the usual
// (a,b,c,d) = (0.57, 0.19, 0.19, 0.05) parameters. This stands in for
// the paper's rmat24 and the social networks.
func RMAT(scale int, edgeFactor int, seed int64) *graph.Graph {
	return rmatLike(scale, edgeFactor, seed, 0.57, 0.19, 0.19)
}

// Kronecker generates a directed Kronecker-style graph (Leskovec et
// al.) with 2^scale vertices, standing in for kron30. It uses the
// Graph500 initiator parameters, which produce an even more skewed
// degree distribution than RMAT here.
func Kronecker(scale int, edgeFactor int, seed int64) *graph.Graph {
	return rmatLike(scale, edgeFactor, seed, 0.57, 0.19, 0.19+0.05)
}

// rmatLike drops edgeFactor*2^scale edges through a recursive 2x2
// partition with corner probabilities a, b, c (d = 1-a-b-c).
func rmatLike(scale, edgeFactor int, seed int64, a, b, c float64) *graph.Graph {
	if scale < 0 || scale > 30 {
		panic(fmt.Sprintf("gen: bad scale %d", scale))
	}
	n := 1 << uint(scale)
	rng := rand.New(rand.NewSource(seed))
	bld := graph.NewBuilder(n)
	m := edgeFactor * n
	for i := 0; i < m; i++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+b:
				v |= 1 << uint(bit)
			case r < a+b+c:
				u |= 1 << uint(bit)
			default:
				u |= 1 << uint(bit)
				v |= 1 << uint(bit)
			}
		}
		bld.AddEdge(uint32(u), uint32(v))
	}
	return bld.Build()
}

// RoadGrid generates a road-network-like graph: a rows x cols grid with
// bidirectional street edges and a few random "highway" shortcuts. Its
// diameter is Θ(rows+cols) with bounded degree, matching road-europe's
// regime (estimated diameter 22541 in Table 1).
func RoadGrid(rows, cols int, seed int64) *graph.Graph {
	if rows <= 0 || cols <= 0 {
		panic("gen: grid dimensions must be positive")
	}
	n := rows * cols
	rng := rand.New(rand.NewSource(seed))
	bld := graph.NewBuilder(n)
	id := func(r, c int) uint32 { return uint32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				bld.AddEdge(id(r, c), id(r, c+1))
				bld.AddEdge(id(r, c+1), id(r, c))
			}
			if r+1 < rows {
				bld.AddEdge(id(r, c), id(r+1, c))
				bld.AddEdge(id(r+1, c), id(r, c))
			}
		}
	}
	// A sparse sprinkle of shortcuts (about 0.5% of n), bidirectional,
	// like motorways: they shave distance without collapsing diameter.
	for i := 0; i < n/200; i++ {
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n))
		bld.AddEdge(u, v)
		bld.AddEdge(v, u)
	}
	return bld.Build()
}

// WebCrawl generates a web-crawl-like graph: an RMAT core of
// 2^coreScale vertices plus pendant directed chains ("long tails") that
// push the estimated diameter far beyond the core's. The paper's key
// observation (§5.3) is that real web-crawls such as gsh15 and
// clueweb12 have non-trivial diameter due to exactly such tails.
//
// tails chains of length tailLen each are attached: the chain's head
// has an edge from a random core vertex and each chain link is
// bidirectional so distances through tails are finite both ways.
func WebCrawl(coreScale, edgeFactor, tails, tailLen int, seed int64) *graph.Graph {
	if tails < 0 || tailLen < 0 {
		panic("gen: negative tail parameters")
	}
	core := RMAT(coreScale, edgeFactor, seed)
	nCore := core.NumVertices()
	n := nCore + tails*tailLen
	rng := rand.New(rand.NewSource(seed + 1))
	bld := graph.NewBuilder(n)
	core.Edges(func(u, v uint32) { bld.AddEdge(u, v) })
	next := uint32(nCore)
	for t := 0; t < tails; t++ {
		anchor := uint32(rng.Intn(nCore))
		prev := anchor
		for l := 0; l < tailLen; l++ {
			bld.AddEdge(prev, next)
			bld.AddEdge(next, prev)
			prev = next
			next++
		}
	}
	return bld.Build()
}

// ErdosRenyi generates a directed G(n, m)-style random graph with
// approximately m edges.
func ErdosRenyi(n int, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	bld := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		bld.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
	}
	return bld.Build()
}

// PreferentialAttachment generates a Barabási–Albert-style directed
// graph: each new vertex attaches k out-edges to earlier vertices
// chosen proportionally to degree (implemented with the repeated-
// endpoint trick). Gives a heavy-tailed in-degree distribution.
func PreferentialAttachment(n, k int, seed int64) *graph.Graph {
	if k <= 0 || n <= 0 {
		panic("gen: n and k must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	bld := graph.NewBuilder(n)
	// endpoints records one entry per edge endpoint; sampling an entry
	// uniformly samples a vertex proportionally to its degree.
	endpoints := make([]uint32, 0, 2*n*k)
	endpoints = append(endpoints, 0)
	for v := 1; v < n; v++ {
		for e := 0; e < k; e++ {
			var tgt uint32
			if rng.Intn(4) == 0 || len(endpoints) == 0 {
				tgt = uint32(rng.Intn(v)) // uniform mixing keeps it connected-ish
			} else {
				tgt = endpoints[rng.Intn(len(endpoints))]
			}
			if tgt == uint32(v) {
				continue
			}
			bld.AddEdge(uint32(v), tgt)
			endpoints = append(endpoints, uint32(v), tgt)
		}
	}
	return bld.Build()
}

// Cycle generates the directed n-cycle 0->1->...->n-1->0, the
// worst-case diameter strongly connected graph; used by CONGEST bound
// tests.
func Cycle(n int) *graph.Graph {
	bld := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		bld.AddEdge(uint32(i), uint32((i+1)%n))
	}
	return bld.Build()
}

// Path generates the directed path 0->1->...->n-1.
func Path(n int) *graph.Graph {
	bld := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		bld.AddEdge(uint32(i), uint32(i+1))
	}
	return bld.Build()
}

// Star generates a directed star: 0 -> i for all i, plus back edges
// i -> 0, giving diameter 2 and a single massive hub.
func Star(n int) *graph.Graph {
	bld := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		bld.AddEdge(0, uint32(i))
		bld.AddEdge(uint32(i), 0)
	}
	return bld.Build()
}

// Complete generates the complete directed graph on n vertices.
func Complete(n int) *graph.Graph {
	bld := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				bld.AddEdge(uint32(i), uint32(j))
			}
		}
	}
	return bld.Build()
}

// LadderDAG generates a DAG with exponentially many shortest paths:
// levels of width 2 where both vertices of level i point to both of
// level i+1. From one end vertex to a far-end vertex there are
// 2^(levels-2) shortest paths, stressing σ accumulation (the paper notes exponential path
// counts need care; we use float64 like the evaluation does).
func LadderDAG(levels int) *graph.Graph {
	if levels < 1 {
		panic("gen: need at least one level")
	}
	n := 2 * levels
	bld := graph.NewBuilder(n)
	for l := 0; l+1 < levels; l++ {
		a, b := uint32(2*l), uint32(2*l+1)
		c, d := uint32(2*l+2), uint32(2*l+3)
		bld.AddEdge(a, c)
		bld.AddEdge(a, d)
		bld.AddEdge(b, c)
		bld.AddEdge(b, d)
	}
	return bld.Build()
}

// SmallWorld generates a Watts–Strogatz-style directed small-world
// graph: a ring lattice where each vertex connects to its k nearest
// clockwise neighbors, with probability p of rewiring each edge to a
// uniform random target. Both directions are added so it stays
// strongly connected at p=0.
func SmallWorld(n, k int, p float64, seed int64) *graph.Graph {
	if k <= 0 || n <= 2*k {
		panic("gen: need n > 2k")
	}
	rng := rand.New(rand.NewSource(seed))
	bld := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			tgt := uint32((v + j) % n)
			if rng.Float64() < p {
				tgt = uint32(rng.Intn(n))
			}
			bld.AddEdge(uint32(v), tgt)
			bld.AddEdge(tgt, uint32(v))
		}
	}
	return bld.Build()
}

// ShuffleIDs returns g with its vertex IDs deterministically permuted.
// The generators here number vertices in topology order (grids
// row-major, lattices around the ring), which hands the contiguous
// block partitioners artificially local cuts with boundary-only proxy
// lists. Real datasets carry no such numbering locality; renumbering
// restores the regime the paper's communication analysis assumes,
// where hosts share long proxy lists of which each round touches only
// a few entries.
func ShuffleIDs(g *graph.Graph, seed int64) *graph.Graph {
	n := g.NumVertices()
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	bld := graph.NewBuilder(n)
	g.Edges(func(u, v uint32) {
		bld.AddEdge(uint32(perm[u]), uint32(perm[v]))
	})
	return bld.Build()
}
