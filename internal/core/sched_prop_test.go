package core

import (
	"sort"
	"testing"
	"testing/quick"

	"mrbc/internal/gen"
	"mrbc/internal/graph"
)

// traceForward runs the forward phase on a fresh engine and records,
// for every non-empty round, the set of forward flags (sorted by
// (vertex, source) so engine-internal iteration order is irrelevant).
func traceForward(g *graph.Graph, batch []uint32, scan bool) map[int][]Flag {
	e := NewEngineOpts(g, len(batch), EngineOpts{Scan: scan})
	for i, s := range batch {
		e.InitSource(s, i, true)
	}
	trace := make(map[int][]Flag)
	var flags []Flag
	for r := 0; ; {
		r = e.NextForwardRound(r)
		if r < 0 {
			break
		}
		flags = e.ForwardFlags(r, flags[:0])
		if len(flags) == 0 {
			if !e.PendingUnsent() {
				break
			}
			continue
		}
		fs := append([]Flag(nil), flags...)
		sort.Slice(fs, func(i, j int) bool {
			if fs[i].V != fs[j].V {
				return fs[i].V < fs[j].V
			}
			return fs[i].Src < fs[j].Src
		})
		trace[r] = fs
		for _, f := range flags {
			d := e.Get(f.V, f.Src)
			e.ApplySync(f.V, f.Src, d.Dist, d.Sigma, r)
		}
		for _, f := range flags {
			e.RelaxOutLocal(f.V, f.Src)
		}
	}
	return trace
}

// graphFromSeed derives a small random graph and source batch from a
// single seed, cycling through generator families so the property is
// checked on varied topologies (sparse random, power-law, grid-like,
// long-diameter DAG).
func graphFromSeed(seed uint64) (*graph.Graph, []uint32) {
	var g *graph.Graph
	switch seed % 4 {
	case 0:
		g = gen.ErdosRenyi(40+int(seed%25), 160, int64(seed))
	case 1:
		g = gen.RMAT(5, 8, int64(seed))
	case 2:
		g = gen.RoadGrid(5, 5, int64(seed))
	default:
		g = gen.LadderDAG(6 + int(seed%10))
	}
	k := 8
	if n := g.NumVertices(); n < k {
		k = n
	}
	batch := make([]uint32, k)
	stride := uint32(g.NumVertices() / k)
	if stride == 0 {
		stride = 1
	}
	for i := range batch {
		batch[i] = uint32(i) * stride % uint32(g.NumVertices())
	}
	return g, batch
}

// TestSchedulersProduceIdenticalRoundTraces is the property from the
// paper's Lemma 6/7 machinery: the bucket scheduler is an indexing
// optimization, so it must emit exactly the same (round → flag set)
// trace as the naive per-round scan — not merely the same final BC.
func TestSchedulersProduceIdenticalRoundTraces(t *testing.T) {
	prop := func(rawSeed uint32) bool {
		seed := uint64(rawSeed)
		g, batch := graphFromSeed(seed)
		scanTrace := traceForward(g, batch, true)
		bucketTrace := traceForward(g, batch, false)
		if len(scanTrace) != len(bucketTrace) {
			t.Logf("seed=%d: scan has %d non-empty rounds, bucket %d",
				seed, len(scanTrace), len(bucketTrace))
			return false
		}
		for r, sf := range scanTrace {
			bf, ok := bucketTrace[r]
			if !ok {
				t.Logf("seed=%d: round %d present in scan trace only", seed, r)
				return false
			}
			if len(sf) != len(bf) {
				t.Logf("seed=%d round %d: %d vs %d flags", seed, r, len(sf), len(bf))
				return false
			}
			for i := range sf {
				if sf[i] != bf[i] {
					t.Logf("seed=%d round %d: flag %d differs: %+v vs %+v",
						seed, r, i, sf[i], bf[i])
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 15
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestWorkerCountInvariance checks the intra-batch parallel path
// against the sequential one across worker counts, bitwise: distances
// and σ counts are order-exact, and the runtime applies the backward δ
// contributions in a canonical shard-concatenation order (see
// parallel.go), so even the fractional dependency sums must be
// bit-for-bit identical for Workers 1, 2, 4, and 8. The inline gate is
// forced off so the pool path (with stealing) is what's being compared
// on these small graphs.
func TestWorkerCountInvariance(t *testing.T) {
	defer forceParallel()()
	prop := func(rawSeed uint32) bool {
		seed := uint64(rawSeed)
		g, batch := graphFromSeed(seed)
		refDist, refSigma, _ := APSPBatchOpts(g, batch, Options{BatchSize: len(batch), Workers: 1})
		refBC, _ := BC(g, batch, Options{BatchSize: len(batch), Workers: 1})
		for _, w := range []int{2, 4, 8} {
			dist, sigma, _ := APSPBatchOpts(g, batch, Options{BatchSize: len(batch), Workers: w})
			for i := range refDist {
				for v := range refDist[i] {
					if dist[i][v] != refDist[i][v] || sigma[i][v] != refSigma[i][v] {
						t.Logf("seed=%d workers=%d: dist/sigma of (src %d, v %d) differ",
							seed, w, i, v)
						return false
					}
				}
			}
			bc, _ := BC(g, batch, Options{BatchSize: len(batch), Workers: w})
			for v := range refBC {
				if bc[v] != refBC[v] {
					t.Logf("seed=%d workers=%d: BC(%d) = %v vs %v (not bitwise equal)",
						seed, w, v, bc[v], refBC[v])
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
