// Social-network analysis: find the key brokers in a power-law graph
// (the use case the paper's introduction motivates: "find key actors
// in terrorist networks", influence analysis) and compare the engines
// on the same workload.
package main

import (
	"fmt"
	"log"

	"mrbc"
)

func main() {
	// A power-law "social network" like the paper's livejournal
	// stand-in: most accounts have a handful of links, a few are
	// massive hubs.
	g := mrbc.GenerateRMAT(12, 8, 2024)
	fmt.Printf("social network: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// Approximate BC from a sampled chunk of sources (Bader et al.):
	// the paper's evaluation does exactly this.
	sources := mrbc.Sources(g, 0, 64)

	res, err := mrbc.Betweenness(g, sources, mrbc.Options{
		Algorithm: mrbc.MRBC,
		BatchSize: 32,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop brokers (highest betweenness):")
	for i, r := range mrbc.TopK(res.Scores, 5) {
		fmt.Printf("  #%d vertex %6d  score %10.1f  (out-degree %d)\n",
			i+1, r.Vertex, r.Score, g.OutDegree(r.Vertex))
	}

	// Cross-check the ranking with two independent engines.
	fmt.Println("\nengine comparison (same sources):")
	for _, alg := range []mrbc.Algorithm{mrbc.MRBC, mrbc.MFBC, mrbc.ABBC} {
		r, err := mrbc.Betweenness(g, sources, mrbc.Options{Algorithm: alg, BatchSize: 32})
		if err != nil {
			log.Fatal(err)
		}
		top := mrbc.TopK(r.Scores, 1)[0]
		fmt.Printf("  %-7s time=%-12v top-vertex=%d\n", alg, r.Duration, top.Vertex)
	}

	// On a cluster, MRBC's round efficiency is the point: compare the
	// round counts of MRBC and level-by-level Brandes on 8 hosts.
	mr, err := mrbc.Betweenness(g, sources, mrbc.Options{Algorithm: mrbc.MRBC, Hosts: 8, BatchSize: 32})
	if err != nil {
		log.Fatal(err)
	}
	sb, err := mrbc.Betweenness(g, sources, mrbc.Options{Algorithm: mrbc.SBBC, Hosts: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\non 8 simulated hosts: MRBC %d rounds / %d KB vs SBBC %d rounds / %d KB\n",
		mr.Rounds, mr.Bytes/1024, sb.Rounds, sb.Bytes/1024)
}
