package core

import (
	"fmt"
	"testing"

	"mrbc/internal/brandes"
	"mrbc/internal/gen"
	"mrbc/internal/graph"
)

// maxAbsDiff returns the largest absolute difference between two score
// vectors.
func maxAbsDiff(a, b []float64) float64 {
	var max float64
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}

// TestCrossEngineEquivalence sweeps the engine variants — the seed
// O(n)-scan engine, the bucket-scheduled engine, and the bucketed
// engine with intra-batch parallel compute — against Brandes over the
// generator suite and batch sizes {1, 7, 32}, asserting identical
// scores (≤ 1e-9) and identical round counts across variants.
func TestCrossEngineEquivalence(t *testing.T) {
	inputs := []struct {
		name string
		g    *graph.Graph
	}{
		{"rmat", gen.RMAT(8, 8, 7)},
		{"kronecker", gen.Kronecker(8, 6, 9)},
		{"roadgrid", gen.RoadGrid(14, 22, 3)},
		{"webcrawl", gen.WebCrawl(7, 6, 3, 25, 5)},
	}
	for _, in := range inputs {
		sources := brandes.FirstKSources(in.g, 0, 40)
		want := brandes.Sequential(in.g, sources)
		for _, bs := range []int{1, 7, 32} {
			t.Run(fmt.Sprintf("%s/k=%d", in.name, bs), func(t *testing.T) {
				scan, scanStats := BC(in.g, sources, Options{BatchSize: bs, Scheduler: ScanScheduler})
				bucket, bucketStats := BC(in.g, sources, Options{BatchSize: bs, Workers: 1})
				par, parStats := BC(in.g, sources, Options{BatchSize: bs, Workers: 4})

				if d := maxAbsDiff(scan, want); d > 1e-9 {
					t.Fatalf("scan engine vs Brandes: max abs diff %g", d)
				}
				if d := maxAbsDiff(bucket, want); d > 1e-9 {
					t.Fatalf("bucketed engine vs Brandes: max abs diff %g", d)
				}
				if d := maxAbsDiff(par, want); d > 1e-9 {
					t.Fatalf("parallel engine vs Brandes: max abs diff %g", d)
				}
				if scanStats.Rounds() != bucketStats.Rounds() {
					t.Fatalf("rounds diverged: scan %d vs bucketed %d", scanStats.Rounds(), bucketStats.Rounds())
				}
				if scanStats.Rounds() != parStats.Rounds() {
					t.Fatalf("rounds diverged: scan %d vs parallel %d", scanStats.Rounds(), parStats.Rounds())
				}
				if scanStats.LabelsSynced != bucketStats.LabelsSynced || scanStats.LabelsSynced != parStats.LabelsSynced {
					t.Fatalf("labels synced diverged: %d / %d / %d",
						scanStats.LabelsSynced, bucketStats.LabelsSynced, parStats.LabelsSynced)
				}
			})
		}
	}
}

// TestAPSPBatchVariantsAgree checks the forward-only entry point across
// scheduler variants: identical distances, σ counts, and round counts.
func TestAPSPBatchVariantsAgree(t *testing.T) {
	g := gen.WebCrawl(7, 6, 2, 20, 11)
	batch := brandes.FirstKSources(g, 0, 24)
	dScan, sScan, stScan := APSPBatchOpts(g, batch, Options{Scheduler: ScanScheduler})
	dBkt, sBkt, stBkt := APSPBatchOpts(g, batch, Options{Workers: 1})
	dPar, sPar, stPar := APSPBatchOpts(g, batch, Options{Workers: 4})
	if stScan.ForwardRounds != stBkt.ForwardRounds || stScan.ForwardRounds != stPar.ForwardRounds {
		t.Fatalf("forward rounds diverged: %d / %d / %d",
			stScan.ForwardRounds, stBkt.ForwardRounds, stPar.ForwardRounds)
	}
	for i := range batch {
		for v := 0; v < g.NumVertices(); v++ {
			if dScan[i][v] != dBkt[i][v] || dScan[i][v] != dPar[i][v] {
				t.Fatalf("dist[%d][%d] diverged: %d / %d / %d", i, v, dScan[i][v], dBkt[i][v], dPar[i][v])
			}
			if sScan[i][v] != sBkt[i][v] || sScan[i][v] != sPar[i][v] {
				t.Fatalf("sigma[%d][%d] diverged: %v / %v / %v", i, v, sScan[i][v], sBkt[i][v], sPar[i][v])
			}
		}
	}
}

// TestBucketSchedulerSkipsEmptyRounds builds a graph with guaranteed
// empty schedule rounds (a long path forces dist-dominated due rounds)
// and checks the bucketed engine still reports the same round count as
// the scan engine, which walks every round.
func TestBucketSchedulerSkipsEmptyRounds(t *testing.T) {
	g := gen.Path(200)
	sources := []uint32{0}
	scan, scanStats := BC(g, sources, Options{BatchSize: 1, Scheduler: ScanScheduler})
	bucket, bucketStats := BC(g, sources, Options{BatchSize: 1})
	if d := maxAbsDiff(scan, bucket); d > 1e-9 {
		t.Fatalf("path graph scores diverged: %g", d)
	}
	if scanStats.Rounds() != bucketStats.Rounds() {
		t.Fatalf("rounds diverged: %d vs %d", scanStats.Rounds(), bucketStats.Rounds())
	}
}

// TestParallelWorkerSweep exercises several worker counts, including
// counts exceeding the vertex count (shard collapse) on a tiny graph.
func TestParallelWorkerSweep(t *testing.T) {
	g := gen.ErdosRenyi(50, 200, 21)
	sources := brandes.FirstKSources(g, 0, 20)
	want := brandes.Sequential(g, sources)
	for _, w := range []int{2, 3, 8, 64} {
		got, stats := BC(g, sources, Options{BatchSize: 8, Workers: w})
		if d := maxAbsDiff(got, want); d > 1e-9 {
			t.Fatalf("workers=%d: max abs diff %g", w, d)
		}
		if stats.Batches != 3 {
			t.Fatalf("workers=%d: batches = %d", w, stats.Batches)
		}
	}
}

// TestBothParallelLevelsCompose runs batch-level and intra-batch
// parallelism together.
func TestBothParallelLevelsCompose(t *testing.T) {
	g := gen.RMAT(9, 8, 31)
	sources := brandes.FirstKSources(g, 0, 64)
	want, wantStats := BC(g, sources, Options{BatchSize: 8, Workers: 1})
	got, gotStats := BC(g, sources, Options{BatchSize: 8, Parallelism: 2, Workers: 2})
	if d := maxAbsDiff(got, want); d > 1e-9 {
		t.Fatalf("composed parallelism changed BC: %g", d)
	}
	if wantStats.Rounds() != gotStats.Rounds() || wantStats.LabelsSynced != gotStats.LabelsSynced {
		t.Fatalf("stats diverged: %+v vs %+v", wantStats, gotStats)
	}
}
