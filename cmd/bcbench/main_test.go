package main

import (
	"bytes"
	"strings"
	"testing"
)

// run invokes realMain with captured output; only fast validation
// paths are exercised here (no experiment actually runs).
func run(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = realMain(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestUnknownExperimentExitsNonZeroAndListsValid(t *testing.T) {
	code, _, stderr := run("-exp", "nope")
	if code == 0 {
		t.Fatal("unknown experiment exited zero")
	}
	for _, want := range []string{"nope", "table1", "comms", "obs", "all"} {
		if !strings.Contains(stderr, want) {
			t.Fatalf("error message %q does not mention %q", stderr, want)
		}
	}
}

func TestUnknownScaleExitsNonZero(t *testing.T) {
	code, _, stderr := run("-scale", "huge", "-exp", "summary")
	if code == 0 || !strings.Contains(stderr, "huge") {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
}

func TestUnknownFlagExitsNonZero(t *testing.T) {
	code, _, _ := run("-definitely-not-a-flag")
	if code == 0 {
		t.Fatal("unknown flag exited zero")
	}
}

func TestObsPathRequiresObsExperiment(t *testing.T) {
	code, _, stderr := run("-exp", "summary", "-obs", "trace.jsonl")
	if code == 0 || !strings.Contains(stderr, "-exp obs") {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
}

func TestUnknownInputExitsNonZero(t *testing.T) {
	code, _, stderr := run("-exp", "summary", "-input", "no-such-graph")
	if code == 0 || stderr == "" {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
}

func TestAllSequenceIsRegistered(t *testing.T) {
	for _, name := range allSequence {
		if _, ok := experiments[name]; !ok {
			t.Fatalf("-exp all includes unregistered experiment %q", name)
		}
	}
}
