// Package congest simulates the CONGEST model of distributed computing
// (Peleg), the setting in which the paper's Section 3 algorithms and
// Theorem 1 bounds are stated.
//
// A network of n processors is modeled by a graph: one processor per
// vertex, communication channels along edges. When the input graph is
// directed, channels remain bidirectional (the network is UG, Section
// 2.2). Execution proceeds in synchronous rounds; in each round every
// vertex first sends O(log n)-bit messages along its channels, and all
// messages sent in round r are received and processed at the end of
// round r — the convention Algorithm 3's listing and the Lemma 2 proof
// use ("a message sent by u in round r is received by v in round r").
//
// The simulator counts rounds and messages exactly, so tests can check
// the paper's bounds: min(2n, n+5D) rounds and mn+2m messages for
// directed APSP, doubled for BC, and k+H rounds for k-SSP.
package congest

import (
	"fmt"

	"mrbc/internal/graph"
	"mrbc/internal/obs"
)

// Delivery is a received message together with its sender.
type Delivery struct {
	From    uint32
	Payload any
}

// Node is the per-vertex state machine of a CONGEST algorithm.
type Node interface {
	// Send is called once per round, in increasing round order starting
	// at round 1, before any round-r message is delivered. The node may
	// call send any number of times; each call transmits one O(log n)-bit
	// message along the channel to a neighbor.
	Send(r int, send func(to uint32, payload any))
	// Receive is called after all sends of round r with the messages
	// addressed to this node in round r.
	Receive(r int, inbox []Delivery)
	// Done reports whether this node considers the algorithm finished
	// locally (used for global termination detection).
	Done() bool
}

// Network simulates a CONGEST execution over a directed graph.
type Network struct {
	g     *graph.Graph
	ug    *graph.Graph // undirected channel structure
	nodes []Node

	inboxes  [][]Delivery
	Rounds   int   // rounds executed so far
	Messages int64 // messages sent so far

	// CheckChannels enables verification that every send follows an
	// existing channel; on by default, disable for big benchmarks.
	CheckChannels bool

	// Trace, when set, receives one obs.KindRound event per Step with
	// the round number and the messages sent in it — the CONGEST-side
	// counterpart of the D-Galois per-round trace.
	Trace *obs.Trace
}

// NewNetwork builds a network over g whose vertex i runs nodes[i].
func NewNetwork(g *graph.Graph, nodes []Node) *Network {
	if len(nodes) != g.NumVertices() {
		panic(fmt.Sprintf("congest: %d nodes for %d vertices", len(nodes), g.NumVertices()))
	}
	return &Network{
		g:             g,
		ug:            g.Undirected(),
		nodes:         nodes,
		inboxes:       make([][]Delivery, g.NumVertices()),
		CheckChannels: true,
	}
}

// Graph returns the underlying directed graph.
func (net *Network) Graph() *graph.Graph { return net.g }

// Step executes one round: sends, then deliveries. It returns the
// number of messages sent in the round.
func (net *Network) Step() int64 {
	net.Rounds++
	r := net.Rounds
	var sent int64
	for v, node := range net.nodes {
		from := uint32(v)
		node.Send(r, func(to uint32, payload any) {
			if net.CheckChannels && !net.ug.HasEdge(from, to) {
				panic(fmt.Sprintf("congest: round %d: vertex %d sent to non-neighbor %d", r, from, to))
			}
			net.inboxes[to] = append(net.inboxes[to], Delivery{From: from, Payload: payload})
			sent++
		})
	}
	net.Messages += sent
	for v, node := range net.nodes {
		if len(net.inboxes[v]) > 0 {
			node.Receive(r, net.inboxes[v])
			net.inboxes[v] = net.inboxes[v][:0]
		} else {
			node.Receive(r, nil)
		}
	}
	if net.Trace.Enabled() {
		net.Trace.Emit(obs.Event{Kind: obs.KindRound, Round: int32(r), Host: -1, Messages: sent})
	}
	return sent
}

// Run executes rounds until one of:
//   - maxRounds rounds have executed (returned as reached=false if the
//     algorithm had not finished), or
//   - detectQuiescence is set and a round sends no messages while every
//     node reports Done (the "global termination condition" the paper's
//     Lemma 8 relies on, which D-Galois detects without extra rounds).
//
// It returns the number of rounds executed.
func (net *Network) Run(maxRounds int, detectQuiescence bool) (rounds int, quiesced bool) {
	for net.Rounds < maxRounds {
		sent := net.Step()
		if detectQuiescence && sent == 0 && net.allDone() {
			return net.Rounds, true
		}
	}
	return net.Rounds, detectQuiescence && net.allDone()
}

func (net *Network) allDone() bool {
	for _, node := range net.nodes {
		if !node.Done() {
			return false
		}
	}
	return true
}

// Reset clears round and message counters (state in nodes is not
// touched); used between the forward and backward phases of BC so each
// phase's cost is visible separately.
func (net *Network) Reset() {
	net.Rounds = 0
	net.Messages = 0
}
