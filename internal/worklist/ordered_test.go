package worklist

import (
	"sort"
	"sync"
	"testing"
)

func TestOrderedServesSmallestFirst(t *testing.T) {
	o := NewOrdered(4)
	o.Push(5, 50)
	o.Push(1, 10)
	o.Push(3, 30)
	o.Push(1, 11)
	got := o.PopChunk(nil)
	// Chunk 4 from the minimum bucket (priority 1) first: both items.
	if len(got) != 2 {
		t.Fatalf("first chunk = %v", got)
	}
	for _, x := range got {
		if x != 10 && x != 11 {
			t.Fatalf("wrong priority served first: %v", got)
		}
	}
	got = o.PopChunk(nil)
	if len(got) != 1 || got[0] != 30 {
		t.Fatalf("second chunk = %v", got)
	}
	got = o.PopChunk(nil)
	if len(got) != 1 || got[0] != 50 {
		t.Fatalf("third chunk = %v", got)
	}
	if !o.Empty() {
		t.Fatal("should be empty")
	}
}

func TestOrderedChunkBounds(t *testing.T) {
	o := NewOrdered(3)
	for i := 0; i < 10; i++ {
		o.Push(7, uint64(i))
	}
	if got := o.PopChunk(nil); len(got) != 3 {
		t.Fatalf("chunk = %d items", len(got))
	}
	if o.Pending() != 7 {
		t.Fatalf("pending = %d", o.Pending())
	}
}

func TestOrderedInterleavedPushPop(t *testing.T) {
	o := NewOrdered(2)
	o.Push(9, 90)
	_ = o.PopChunk(nil) // drains priority 9
	o.Push(2, 20)       // smaller priority arrives later
	got := o.PopChunk(nil)
	if len(got) != 1 || got[0] != 20 {
		t.Fatalf("got %v", got)
	}
}

func TestOrderedConcurrent(t *testing.T) {
	o := NewOrdered(8)
	const total = 4000
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < total/4; i++ {
				o.Push(uint64(i%17), uint64(w*(total/4)+i))
			}
		}(w)
	}
	wg.Wait()
	var mu sync.Mutex
	var all []uint64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []uint64
			for {
				buf = o.PopChunk(buf[:0])
				if len(buf) == 0 {
					if o.Empty() {
						return
					}
					continue
				}
				mu.Lock()
				all = append(all, buf...)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(all) != total {
		t.Fatalf("popped %d items, want %d", len(all), total)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != uint64(i) {
			t.Fatalf("missing/duplicate item at %d: %d", i, v)
		}
	}
}

func TestOrderedBadChunkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewOrdered(0)
}
