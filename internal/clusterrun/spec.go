// Package clusterrun is the multi-process cluster fabric: the job
// description a coordinator hands each bcd host daemon, the daemon's
// control-connection protocol, the coordinator that spawns and drives
// an N-process localhost cluster, and a deterministic socket-level
// fault proxy for chaos testing the TCP transport.
//
// The division of labor with the engine packages: mrbcdist/sbbc/vprog
// already run SPMD when handed a remote gluon.Transport — every
// process executes the same batch loop for its one host. This package
// supplies everything around that: process lifecycle, the address
// book, partition-plan distribution (each process recomputes the same
// deterministic partitioning from the same canonical graph file), and
// result aggregation (per-process score vectors are disjoint by
// master ownership, so the coordinator sums them elementwise).
package clusterrun

import (
	"fmt"

	"mrbc/internal/dgalois"
	"mrbc/internal/elastic"
	"mrbc/internal/gluon"
	"mrbc/internal/graph"
	"mrbc/internal/mrbcdist"
	"mrbc/internal/obs"
	"mrbc/internal/partition"
	"mrbc/internal/sbbc"
)

// JobSpec describes one BC job for one host daemon. The coordinator
// fills Host and Addrs per daemon; everything else is identical across
// the cluster (and must be — each process recomputes the partition
// plan from GraphPath + Partition and the plans have to agree).
type JobSpec struct {
	// Engine selects the algorithm: "mrbcdist" (default) or "sbbc".
	Engine string `json:"engine"`
	// GraphPath is the canonical binary graph file every host loads.
	GraphPath string `json:"graph_path"`
	// Partition names the deterministic partitioning every process
	// recomputes identically: "edgecut" (default) or "cartesian".
	Partition string `json:"partition"`
	// Hosts is the cluster size; Host is this daemon's host index.
	Hosts int `json:"hosts"`
	Host  int `json:"host"`
	// Addrs is the transport address book, indexed by host. Entries may
	// point at fault proxies rather than the hosts' real listeners.
	Addrs []string `json:"addrs"`
	// Sources are the BC sources, in order.
	Sources []uint32 `json:"sources"`
	// BatchSize is mrbcdist's k (0: its default).
	BatchSize int `json:"batch_size,omitempty"`
	// CandidateSync selects mrbcdist's CandidateSync mode.
	CandidateSync bool `json:"candidate_sync,omitempty"`
	// EngineWorkers is mrbcdist's intra-host worker count.
	EngineWorkers int `json:"engine_workers,omitempty"`
	// PipelineDepth is mrbcdist's software-pipelining window: how many
	// source batches may be in flight at once (0/1: serial batches).
	PipelineDepth int `json:"pipeline_depth,omitempty"`
	// TracePath, when non-empty, makes the daemon record a phase-level
	// obs trace for the job and stream it as JSONL to this path while
	// the job runs (one fsynced header up front, one complete line per
	// event — a killed daemon leaves a parseable partial trace).
	TracePath string `json:"trace_path,omitempty"`
	// ShipTrace makes the daemon return the job's trace events in its
	// JobResult over the control connection, so the coordinator can
	// merge every host's trace without touching the daemons' disks.
	// Independent of TracePath; both may be set.
	ShipTrace bool `json:"ship_trace,omitempty"`
	// DeadlineSteps / StepMillis override the TCP transport's stall
	// deadline (0: gluon defaults). Chaos tests shorten them so a
	// severed host fails fast instead of after the full 3 s budget.
	DeadlineSteps int `json:"deadline_steps,omitempty"`
	// StepMillis is the reliability step length in milliseconds.
	StepMillis int `json:"step_millis,omitempty"`
	// CheckpointDir, when non-empty, makes the daemon persist a boundary
	// snapshot under <dir>/host<h>/ after every source batch (mrbcdist
	// only, serial batches). The directory is shared across the cluster's
	// daemons, so the coordinator can compute the latest common boundary
	// and a replacement daemon can adopt a dead host's snapshots.
	CheckpointDir string `json:"checkpoint_dir,omitempty"`
	// ResumeBatch > 0 resumes the run from that batch boundary's
	// snapshot in CheckpointDir instead of starting at batch 0.
	ResumeBatch int `json:"resume_batch,omitempty"`
	// Epoch is the cluster membership epoch: stamped into transport
	// hellos (stale connections from other epochs are rejected) and into
	// checkpoints. The coordinator bumps it on every recovery attempt.
	Epoch int `json:"epoch,omitempty"`
}

// TCPOptions derives the transport tuning from the spec.
func (s *JobSpec) TCPOptions() gluon.TCPOptions {
	opts := gluon.TCPOptions{DeadlineSteps: s.DeadlineSteps, Epoch: s.Epoch}
	if s.StepMillis > 0 {
		opts.StepInterval = millis(s.StepMillis)
	}
	return opts
}

// JobResult is one host's outcome: its share of the scores (zero
// outside its masters), its paper-model stats, and a structured fault
// if the run aborted.
type JobResult struct {
	Host     int       `json:"host"`
	Scores   []float64 `json:"scores,omitempty"`
	Rounds   int       `json:"rounds"`
	Bytes    int64     `json:"bytes"`
	Messages int64     `json:"messages"`
	// CommNs/HiddenNs split the host's exchange wall time into waits on
	// the critical path and waits hidden behind pipelined compute.
	CommNs   int64 `json:"comm_ns,omitempty"`
	HiddenNs int64 `json:"hidden_ns,omitempty"`
	// Retries/RetryBytes/Redials are the host's transport recovery work
	// (its outgoing channels only).
	Retries    int64 `json:"retries,omitempty"`
	RetryBytes int64 `json:"retry_bytes,omitempty"`
	Redials    int64 `json:"redials,omitempty"`
	// Fault carries the structured failure, nil on success.
	Fault *Fault `json:"fault,omitempty"`
	// Trace carries the host's obs events when the spec set ShipTrace —
	// stamped with the host's origin and epoch, ready for merge.
	Trace []obs.Event `json:"trace,omitempty"`
}

// Fault is the JSON projection of *dgalois.FaultError, relayed from a
// daemon to the coordinator.
type Fault struct {
	Host     int    `json:"host"`
	Exchange int    `json:"exchange"`
	Step     int    `json:"step"`
	Pending  int    `json:"pending"`
	Killed   bool   `json:"killed,omitempty"`
	Reason   string `json:"reason"`
}

// AsError reconstructs the engine-level error, nil for a nil fault.
func (f *Fault) AsError() error {
	if f == nil {
		return nil
	}
	return &dgalois.FaultError{Host: f.Host, Exchange: f.Exchange, Step: f.Step, Pending: f.Pending, Killed: f.Killed, Reason: f.Reason}
}

// BuildPartitioning recomputes the job's deterministic partition plan.
// Every process runs this on the same graph bytes, so the plans agree
// without shipping them over the wire.
func BuildPartitioning(g *graph.Graph, name string, hosts int) (*partition.Partitioning, error) {
	switch name {
	case "", "edgecut":
		return partition.EdgeCut(g, hosts), nil
	case "cartesian":
		return partition.CartesianCut(g, hosts), nil
	}
	return nil, fmt.Errorf("clusterrun: unknown partition %q", name)
}

// RunJob executes the spec's engine over the given transport and
// returns this host's result. The transport decides the execution
// shape: a remote backend runs the spec's one host (SPMD); the
// in-process MemTransport (or nil) runs the whole simulated cluster —
// the coordinator uses that for its reference run. A non-nil metrics
// registry receives the engine's live gauges (the daemon exposes it
// on /metrics).
func RunJob(spec *JobSpec, transport gluon.Transport, trace *obs.Trace, metrics *obs.Registry) (*JobResult, error) {
	g, err := graph.Load(spec.GraphPath)
	if err != nil {
		return nil, fmt.Errorf("clusterrun: load graph: %w", err)
	}
	pt, err := BuildPartitioning(g, spec.Partition, spec.Hosts)
	if err != nil {
		return nil, err
	}
	var (
		scores []float64
		stats  dgalois.Stats
		runErr error
	)
	switch spec.Engine {
	case "", "mrbcdist":
		opts := mrbcdist.Options{
			BatchSize:     spec.BatchSize,
			Trace:         trace,
			Metrics:       metrics,
			Transport:     transport,
			EngineWorkers: spec.EngineWorkers,
			PipelineDepth: spec.PipelineDepth,
			Epoch:         spec.Epoch,
		}
		if spec.CandidateSync {
			opts.Sync = mrbcdist.CandidateSync
		}
		if spec.CheckpointDir != "" {
			if spec.PipelineDepth > 1 {
				return nil, fmt.Errorf("clusterrun: checkpointing requires serial batches (pipeline_depth %d)", spec.PipelineDepth)
			}
			sink, err := elastic.NewFileSink(spec.CheckpointDir, spec.Host)
			if err != nil {
				return nil, err
			}
			opts.Checkpoint = sink
			if spec.ResumeBatch > 0 {
				data, err := sink.Get(spec.ResumeBatch)
				if err != nil {
					return nil, fmt.Errorf("clusterrun: resume: %w", err)
				}
				snap, err := elastic.Decode(data)
				if err != nil {
					return nil, fmt.Errorf("clusterrun: resume: %w", err)
				}
				opts.Resume = snap
			}
		} else if spec.ResumeBatch > 0 {
			return nil, fmt.Errorf("clusterrun: resume_batch %d without checkpoint_dir", spec.ResumeBatch)
		}
		scores, stats, runErr = mrbcdist.RunChecked(g, pt, spec.Sources, opts)
	case "sbbc":
		if spec.CheckpointDir != "" || spec.ResumeBatch > 0 {
			return nil, fmt.Errorf("clusterrun: engine %q does not support checkpoint/resume", spec.Engine)
		}
		scores, stats, runErr = sbbc.RunOptsChecked(g, pt, spec.Sources, sbbc.Options{
			Trace:     trace,
			Metrics:   metrics,
			Transport: transport,
		})
	default:
		return nil, fmt.Errorf("clusterrun: unknown engine %q", spec.Engine)
	}
	res := &JobResult{
		Host:     spec.Host,
		Rounds:   stats.Rounds,
		Bytes:    stats.Bytes,
		Messages: stats.Messages,
		CommNs:   stats.CommTime.Nanoseconds(),
		HiddenNs: stats.HiddenTime.Nanoseconds(),
	}
	if transport != nil {
		var agg gluon.ChannelStats
		for to := 0; to < spec.Hosts; to++ {
			agg.Add(transport.Stats(spec.Host, to))
		}
		res.Retries = agg.Retries
		res.RetryBytes = agg.RetryBytes
		res.Redials = agg.Redials
	}
	if runErr != nil {
		var fe *dgalois.FaultError
		if !asFault(runErr, &fe) {
			return nil, runErr
		}
		res.Fault = &Fault{Host: fe.Host, Exchange: fe.Exchange, Step: fe.Step, Pending: fe.Pending, Killed: fe.Killed, Reason: fe.Reason}
		return res, nil
	}
	res.Scores = scores
	return res, nil
}
