package mrbcdist

import (
	"errors"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"mrbc/internal/brandes"
	"mrbc/internal/dgalois"
	"mrbc/internal/gen"
	"mrbc/internal/gluon"
	"mrbc/internal/graph"
	"mrbc/internal/obs"
	"mrbc/internal/partition"
)

// modelStream projects a trace onto the depth-invariant model events:
// the per-(vertex, source) send events and the per-batch summaries,
// both tagged with batch-relative rounds. Phase events carry the
// coordinator's global round/seq numbering, which legitimately differs
// between pipeline depths (rounds of concurrent batches interleave),
// so they are excluded from the cross-depth comparison.
func modelStream(events []obs.Event) []obs.Event {
	var out []obs.Event
	for _, e := range obs.Canonical(events) {
		if e.Kind == obs.KindSend || e.Kind == obs.KindBatch {
			out = append(out, e)
		}
	}
	return out
}

// TestPipelineDepthsBitwiseAgree is the determinism contract of the
// software-pipelined batch runner: for every sync mode and engine
// configuration, depths 1, 2, and 4 must produce bit-identical scores,
// identical paper-model volume, and an identical model-event stream
// (sends + batch summaries) — the only thing the depth may change is
// wall-clock interleaving.
func TestPipelineDepthsBitwiseAgree(t *testing.T) {
	g := gen.RMAT(7, 8, 3)
	sources := brandes.FirstKSources(g, 0, 32) // BatchSize 8 -> 4 batches
	oracle := brandes.Sequential(g, sources)

	cases := []struct {
		name string
		opts Options
		pt   *partition.Partitioning
	}{
		{"arb/edge-cut", Options{BatchSize: 8}, partition.EdgeCut(g, 4)},
		{"cand/edge-cut", Options{BatchSize: 8, Sync: CandidateSync}, partition.EdgeCut(g, 4)},
		{"arb/cartesian", Options{BatchSize: 8}, partition.CartesianCut(g, 4)},
		{"arb/workers-4", Options{BatchSize: 8, EngineWorkers: 4}, partition.EdgeCut(g, 4)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var (
				refScores []float64
				refStats  dgalois.Stats
				refModel  []obs.Event
			)
			for _, depth := range []int{1, 2, 4} {
				opts := tc.opts
				opts.PipelineDepth = depth
				opts.Trace = obs.NewTrace(1<<20, obs.LevelDetail)
				scores, stats := Run(g, tc.pt, sources, opts)
				if opts.Trace.Dropped() > 0 {
					t.Fatalf("depth %d: trace dropped %d events", depth, opts.Trace.Dropped())
				}
				if !approxEqual(scores, oracle, 1e-9) {
					t.Fatalf("depth %d: scores diverged from Brandes oracle", depth)
				}
				model := modelStream(opts.Trace.Events())
				if depth == 1 {
					refScores, refStats, refModel = scores, stats, model
					continue
				}
				for v := range scores {
					if math.Float64bits(scores[v]) != math.Float64bits(refScores[v]) {
						t.Fatalf("depth %d: score of vertex %d = %x, depth 1 = %x",
							depth, v, math.Float64bits(scores[v]), math.Float64bits(refScores[v]))
					}
				}
				if stats.Bytes != refStats.Bytes || stats.Messages != refStats.Messages || stats.Rounds != refStats.Rounds {
					t.Fatalf("depth %d: volume %d B / %d msgs / %d rounds, depth 1: %d / %d / %d",
						depth, stats.Bytes, stats.Messages, stats.Rounds,
						refStats.Bytes, refStats.Messages, refStats.Rounds)
				}
				if len(model) != len(refModel) {
					t.Fatalf("depth %d: %d model events, depth 1: %d", depth, len(model), len(refModel))
				}
				for i := range model {
					if model[i] != refModel[i] {
						t.Fatalf("depth %d: model event %d = %+v, depth 1 = %+v",
							depth, i, model[i], refModel[i])
					}
				}
			}
		})
	}
}

// TestPipelineDepthClamped pins the clamp: a depth larger than the
// batch count degrades to one coroutine per batch, and depth 0/1 run
// the serial loop (covered implicitly by every existing test, asserted
// here for the boundary values).
func TestPipelineDepthClamped(t *testing.T) {
	g := gen.RoadGrid(6, 6, 5)
	pt := partition.EdgeCut(g, 2)
	sources := brandes.FirstKSources(g, 0, 10)
	oracle := brandes.Sequential(g, sources)
	for _, depth := range []int{0, 1, 3, 64} {
		got, _ := Run(g, pt, sources, Options{BatchSize: 4, PipelineDepth: depth})
		if !approxEqual(got, oracle, 1e-9) {
			t.Fatalf("depth %d: scores diverged from oracle", depth)
		}
	}
}

// TestPipelineHiddenTimeAccounted checks that a pipelined run reports
// overlap: with depth >= 2 some exchange completions happen after
// other batches computed in between, so Stats.HiddenTime and the
// exchange events' HiddenNs must be populated and consistent.
func TestPipelineHiddenTimeAccounted(t *testing.T) {
	g := gen.RMAT(7, 8, 3)
	pt := partition.EdgeCut(g, 4)
	sources := brandes.FirstKSources(g, 0, 32)

	tr := obs.NewTrace(1<<18, obs.LevelPhase)
	_, serial := Run(g, pt, sources, Options{BatchSize: 8, Trace: tr})
	if serial.HiddenTime != 0 {
		t.Fatalf("serial run reported %v hidden exchange time", serial.HiddenTime)
	}
	var serialHidden int64
	for _, e := range tr.Events() {
		serialHidden += e.HiddenNs
	}
	if serialHidden != 0 {
		t.Fatalf("serial trace carries %d ns of HiddenNs", serialHidden)
	}

	tr = obs.NewTrace(1<<18, obs.LevelPhase)
	_, piped := Run(g, pt, sources, Options{BatchSize: 8, PipelineDepth: 2, Trace: tr})
	if piped.HiddenTime <= 0 {
		t.Fatalf("pipelined run hid no exchange time (HiddenTime = %v)", piped.HiddenTime)
	}
	var traceHidden int64
	for _, e := range tr.Events() {
		traceHidden += e.HiddenNs
	}
	if traceHidden != int64(piped.HiddenTime) {
		t.Fatalf("trace HiddenNs sum %d != Stats.HiddenTime %d", traceHidden, int64(piped.HiddenTime))
	}
}

// tcpViews builds an N-host localhost TCP mesh (listeners first so the
// address book is complete before any transport dials).
func tcpViews(t *testing.T, hosts int) []gluon.Transport {
	t.Helper()
	lns := make([]net.Listener, hosts)
	addrs := make([]string, hosts)
	for h := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen host %d: %v", h, err)
		}
		lns[h] = ln
		addrs[h] = ln.Addr().String()
	}
	views := make([]gluon.Transport, hosts)
	for h := range views {
		tr, err := gluon.NewTCPTransport(h, addrs, lns[h], gluon.TCPOptions{})
		if err != nil {
			t.Fatalf("transport host %d: %v", h, err)
		}
		views[h] = tr
	}
	return views
}

// runTCPSPMD executes one SPMD cluster run (one goroutine per host
// over a real localhost TCP mesh) and returns the elementwise sum of
// the per-host score vectors. The vectors are disjoint by master
// ownership, so the sum is exact.
func runTCPSPMD(t *testing.T, g *graph.Graph, pt *partition.Partitioning, sources []uint32, opts Options) []float64 {
	t.Helper()
	hosts := pt.NumHosts
	views := tcpViews(t, hosts)
	defer func() {
		for _, v := range views {
			v.Close()
		}
	}()
	perHost := make([][]float64, hosts)
	errs := make([]error, hosts)
	var wg sync.WaitGroup
	for h := 0; h < hosts; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			o := opts
			o.Transport = views[h]
			perHost[h], _, errs[h] = RunChecked(g, pt, sources, o)
		}(h)
	}
	wg.Wait()
	for h, err := range errs {
		if err != nil {
			t.Fatalf("host %d: %v", h, err)
		}
	}
	sum := make([]float64, g.NumVertices())
	for _, scores := range perHost {
		for v, s := range scores {
			sum[v] += s
		}
	}
	return sum
}

// TestPipelineTCPSPMD runs the pipelined engine as a real 4-process
// SPMD cluster over localhost TCP: depth 2 must agree bit for bit with
// the depth-1 run on the same transport and match the Brandes oracle.
// This exercises the per-batch exchange-identifier streams on the
// wire: concurrently-open exchanges of different batches must land in
// the right transport boxes regardless of arrival order.
func TestPipelineTCPSPMD(t *testing.T) {
	if testing.Short() {
		t.Skip("localhost TCP cluster; skipped in -short")
	}
	g := gen.RMAT(6, 8, 1)
	pt := partition.EdgeCut(g, 4)
	sources := brandes.FirstKSources(g, 0, 16) // BatchSize 4 -> 4 batches
	oracle := brandes.Sequential(g, sources)

	serial := runTCPSPMD(t, g, pt, sources, Options{BatchSize: 4, PipelineDepth: 1})
	piped := runTCPSPMD(t, g, pt, sources, Options{BatchSize: 4, PipelineDepth: 2})
	if !approxEqual(piped, oracle, 1e-9) {
		t.Fatal("pipelined TCP SPMD scores diverged from Brandes oracle")
	}
	for v := range piped {
		if math.Float64bits(piped[v]) != math.Float64bits(serial[v]) {
			t.Fatalf("vertex %d: depth-2 score %x != depth-1 score %x over TCP",
				v, math.Float64bits(piped[v]), math.Float64bits(serial[v]))
		}
	}
}

// TestPipelineUnderFaultPlans drives the depth-2 runner through seeded
// recoverable fault schedules: retransmission and ack machinery must
// interleave correctly with the pipelined exchange streams, and scores
// must stay oracle-exact.
func TestPipelineUnderFaultPlans(t *testing.T) {
	g := gen.RMAT(6, 8, 42)
	pt := partition.EdgeCut(g, 4)
	sources := brandes.FirstKSources(g, 0, 16)
	oracle := brandes.Sequential(g, sources)

	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := 0; seed < seeds; seed++ {
		plan := dgalois.RandomPlan(uint64(seed), 0.20, pt.NumHosts)
		got, stats, err := RunChecked(g, pt, sources, Options{BatchSize: 8, PipelineDepth: 2, Fault: plan})
		if err != nil {
			t.Fatalf("seed %d: recoverable plan errored: %v", seed, err)
		}
		if !approxEqual(got, oracle, 1e-9) {
			t.Fatalf("seed %d: pipelined scores diverged from oracle under faults", seed)
		}
		if stats.Faults == nil {
			t.Fatalf("seed %d: stats carry no fault accounting", seed)
		}
	}
}

// TestPipelineUnrecoverableFaultErrors pins the abort path of the
// pipelined runner: a permanently stalled host must surface as the
// structured *dgalois.FaultError on the coordinator (every batch
// goroutine unwound, no hang, no panic escaping RunChecked).
func TestPipelineUnrecoverableFaultErrors(t *testing.T) {
	g := gen.RoadGrid(5, 5, 1)
	pt := partition.EdgeCut(g, 4)
	sources := brandes.FirstKSources(g, 0, 8)
	plan := &dgalois.FaultPlan{
		Seed:          1,
		DeadlineSteps: 16,
		Stalls:        []dgalois.Stall{{Host: 1, Exchange: 2, Steps: -1}},
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := RunChecked(g, pt, sources, Options{BatchSize: 4, PipelineDepth: 2, Fault: plan})
		done <- err
	}()
	select {
	case err := <-done:
		var fe *dgalois.FaultError
		if !errors.As(err, &fe) {
			t.Fatalf("got %v, want *dgalois.FaultError", err)
		}
		if fe.Host != 1 {
			t.Fatalf("error implicates host %d, want stalled host 1", fe.Host)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("pipelined runner hung on permanently stalled host")
	}
}
