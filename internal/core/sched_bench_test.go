package core

import (
	"runtime"
	"testing"

	"mrbc/internal/brandes"
	"mrbc/internal/gen"
	"mrbc/internal/graph"
)

// Benchmarks comparing the scheduler variants on the two workload
// shapes that matter: a road corridor (high diameter, many near-empty
// rounds — the case the O(n) per-round scan hurts most) and an RMAT
// power-law graph (low diameter, dense rounds). BENCH_engine.json is
// generated from the same configurations by `bcbench -exp engine`.

func benchmarkEngine(b *testing.B, g *graph.Graph, numSources int, opts Options) {
	sources := brandes.FirstKSources(g, 0, numSources)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = BC(g, sources, opts)
	}
}

func roadCorridor() *graph.Graph { return gen.RoadGrid(40000, 1, 104) }

func BenchmarkMRBCRoadGridScan(b *testing.B) {
	benchmarkEngine(b, roadCorridor(), 8, Options{BatchSize: 8, Scheduler: ScanScheduler})
}

func BenchmarkMRBCRoadGridBucket(b *testing.B) {
	benchmarkEngine(b, roadCorridor(), 8, Options{BatchSize: 8, Workers: 1})
}

func BenchmarkMRBCRoadGridBucketParallel(b *testing.B) {
	benchmarkEngine(b, roadCorridor(), 8, Options{BatchSize: 8, Workers: runtime.GOMAXPROCS(0)})
}

func BenchmarkMRBCRMATScan(b *testing.B) {
	benchmarkEngine(b, gen.RMAT(13, 8, 103), 32, Options{BatchSize: 32, Scheduler: ScanScheduler})
}

func BenchmarkMRBCRMATBucket(b *testing.B) {
	benchmarkEngine(b, gen.RMAT(13, 8, 103), 32, Options{BatchSize: 32, Workers: 1})
}

func BenchmarkMRBCRMATBucketParallel(b *testing.B) {
	benchmarkEngine(b, gen.RMAT(13, 8, 103), 32, Options{BatchSize: 32, Workers: runtime.GOMAXPROCS(0)})
}
