package obs

import (
	"fmt"
	"sort"
)

// Totals aggregates a trace's volume and transport counters. Pack and
// unpack phase events account the same payloads from the sender and
// receiver sides, so PackBytes == UnpackBytes on any complete trace —
// and both equal the cluster's paper-model Stats.Bytes.
type Totals struct {
	PackBytes      int64
	PackMessages   int64
	UnpackBytes    int64
	UnpackMessages int64
	Dense          int64
	Sparse         int64
	All            int64

	Retries       int64
	RetryBytes    int64
	FrameBytes    int64
	AckMessages   int64
	AckBytes      int64
	DeliverySteps int64
	MaxSteps      int64
	Injected      int64
	Stalled       int64
}

// Observe folds one event's counters into the totals. It is the
// streaming form of Sum: trace consumers that cannot hold a multi-GB
// detail trace in memory feed events from an EventReader one at a
// time.
func (t *Totals) Observe(e Event) {
	switch e.Kind {
	case KindPhase:
		switch e.Phase {
		case PhasePack:
			t.PackBytes += e.Bytes
			t.PackMessages += e.Messages
			t.Dense += e.Dense
			t.Sparse += e.Sparse
			t.All += e.All
		case PhaseUnpack:
			t.UnpackBytes += e.Bytes
			t.UnpackMessages += e.Messages
		}
	case KindTransport:
		t.Retries += e.Retries
		t.RetryBytes += e.RetryBytes
		t.FrameBytes += e.FrameBytes
		t.AckMessages += e.AckMessages
		t.AckBytes += e.AckBytes
		t.DeliverySteps += e.Steps
		if e.Steps > t.MaxSteps {
			t.MaxSteps = e.Steps
		}
		t.Injected += e.Injected
		t.Stalled += e.Stalled
	}
}

// Sum folds a trace's counters into Totals (the trace-accounting
// oracle the chaostest sweep checks against dgalois.Stats).
func Sum(events []Event) Totals {
	var t Totals
	for _, e := range events {
		t.Observe(e)
	}
	return t
}

// batchSummaries indexes the KindBatch events of a trace.
func batchSummaries(events []Event) (map[int32]Event, error) {
	batches := make(map[int32]Event)
	for _, e := range events {
		if e.Kind != KindBatch {
			continue
		}
		if _, dup := batches[e.Batch]; dup {
			return nil, fmt.Errorf("obs: duplicate batch event for batch %d", e.Batch)
		}
		batches[e.Batch] = e
	}
	if len(batches) == 0 {
		return nil, fmt.Errorf("obs: trace carries no batch events")
	}
	return batches, nil
}

// CheckRoundBounds verifies Lemma 8 against a recorded trace, given H
// (the maximum finite distance from any batched source):
//
//   - per batch, forward activity rounds + backward rounds + the one
//     empty termination-detection round stay within 2(k+H)+1;
//   - at send granularity (LevelDetail traces), every forward
//     synchronization lands in a round ≤ k+H of its batch and within
//     the batch's recorded forward span, and every backward
//     synchronization within the batch's backward span.
//
// Phase-level traces check only the per-batch bound.
func CheckRoundBounds(events []Event, h int) error {
	batches, err := batchSummaries(events)
	if err != nil {
		return err
	}
	for bi, b := range batches {
		bound := 2*(int(b.K)+h) + 1
		total := int(b.FwdRounds) + int(b.BackRounds) + 1
		if total > bound {
			return fmt.Errorf("obs: batch %d (k=%d) ran %d+%d+1 = %d rounds, exceeding the Lemma 8 bound 2(k+H)+1 = %d (H=%d)",
				bi, b.K, b.FwdRounds, b.BackRounds, total, bound, h)
		}
	}
	for _, e := range events {
		if e.Kind != KindSend {
			continue
		}
		b, ok := batches[e.Batch]
		if !ok {
			return fmt.Errorf("obs: send event for batch %d has no batch summary", e.Batch)
		}
		if e.Round < 1 {
			return fmt.Errorf("obs: %s send of (v=%d, src=%d) in batch %d has round %d < 1",
				e.Dir, e.V, e.Src, e.Batch, e.Round)
		}
		switch e.Dir {
		case DirForward:
			if limit := int32(int(b.K) + h); e.Round > limit {
				return fmt.Errorf("obs: forward send of (v=%d, src=%d) in batch %d at round %d exceeds the k+H = %d bound",
					e.V, e.Src, e.Batch, e.Round, limit)
			}
			if e.Round > b.FwdRounds {
				return fmt.Errorf("obs: forward send of (v=%d, src=%d) in batch %d at round %d exceeds the batch's forward span R = %d",
					e.V, e.Src, e.Batch, e.Round, b.FwdRounds)
			}
		case DirBackward:
			if e.Round > b.BackRounds {
				return fmt.Errorf("obs: backward send of (v=%d, src=%d) in batch %d at round %d exceeds the batch's backward span %d",
					e.V, e.Src, e.Batch, e.Round, b.BackRounds)
			}
		default:
			return fmt.Errorf("obs: send event of (v=%d, src=%d) in batch %d has no direction", e.V, e.Src, e.Batch)
		}
	}
	return nil
}

// pairKey identifies one (batch, vertex, source) synchronization.
type pairKey struct {
	batch int32
	v     int32
	src   int32
}

// CheckReversal verifies the backward-reversal symmetry of Algorithm 5
// against a LevelDetail trace: every (vertex, source) pair synchronized
// forward in round τ of a batch with forward span R synchronizes
// backward in round R − τ + 1, exactly once in each direction.
func CheckReversal(events []Event) error {
	batches, err := batchSummaries(events)
	if err != nil {
		return err
	}
	fwd := make(map[pairKey]int32)
	back := make(map[pairKey]int32)
	sends := 0
	for _, e := range events {
		if e.Kind != KindSend {
			continue
		}
		sends++
		k := pairKey{e.Batch, e.V, e.Src}
		switch e.Dir {
		case DirForward:
			if prev, dup := fwd[k]; dup {
				return fmt.Errorf("obs: (v=%d, src=%d) in batch %d synchronized forward twice (rounds %d and %d)",
					k.v, k.src, k.batch, prev, e.Round)
			}
			fwd[k] = e.Round
		case DirBackward:
			if prev, dup := back[k]; dup {
				return fmt.Errorf("obs: (v=%d, src=%d) in batch %d synchronized backward twice (rounds %d and %d)",
					k.v, k.src, k.batch, prev, e.Round)
			}
			back[k] = e.Round
		}
	}
	if sends == 0 {
		return fmt.Errorf("obs: trace carries no send events (record at LevelDetail)")
	}
	// Deterministic error selection: report the smallest offending key.
	keys := make([]pairKey, 0, len(fwd))
	for k := range fwd {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.batch != b.batch {
			return a.batch < b.batch
		}
		if a.v != b.v {
			return a.v < b.v
		}
		return a.src < b.src
	})
	for _, k := range keys {
		tau := fwd[k]
		br, ok := back[k]
		if !ok {
			return fmt.Errorf("obs: (v=%d, src=%d) in batch %d synchronized forward (round %d) but never backward",
				k.v, k.src, k.batch, tau)
		}
		r := batches[k.batch].FwdRounds
		if want := r - tau + 1; br != want {
			return fmt.Errorf("obs: (v=%d, src=%d) in batch %d broke reversal symmetry: forward round τ=%d, R=%d, backward round %d, want R−τ+1 = %d",
				k.v, k.src, k.batch, tau, r, br, want)
		}
		delete(back, k)
	}
	if len(back) > 0 {
		for k, br := range back {
			return fmt.Errorf("obs: (v=%d, src=%d) in batch %d synchronized backward (round %d) but never forward",
				k.v, k.src, k.batch, br)
		}
	}
	return nil
}
