package tracetest

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"mrbc/internal/brandes"
	"mrbc/internal/gen"
	"mrbc/internal/mrbcdist"
	"mrbc/internal/obs"
	"mrbc/internal/partition"
)

// pipelinedEvents records a detail trace of the golden workload run at
// the given pipeline depth.
func pipelinedEvents(t *testing.T, depth int) []obs.Event {
	t.Helper()
	g := gen.RMAT(6, 8, 42)
	pt := partition.EdgeCut(g, 4)
	sources := brandes.FirstKSources(g, 0, 16)
	tr := obs.NewTrace(traceCap, obs.LevelDetail)
	_, _, err := mrbcdist.RunChecked(g, pt, sources, mrbcdist.Options{
		BatchSize: 4, PipelineDepth: depth, Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	return requireComplete(t, tr)
}

// interleavedBatches reports whether the raw emission order mixes
// events of different batches (a batch index appears again after a
// higher one was seen) — the stream shape the pipelined runner
// produces and the checkers must accept.
func interleavedBatches(events []obs.Event) bool {
	maxSeen := int32(-1)
	for _, e := range events {
		if e.Kind != obs.KindSend && e.Kind != obs.KindPhase {
			continue
		}
		if e.Batch < maxSeen {
			return true
		}
		if e.Batch > maxSeen {
			maxSeen = e.Batch
		}
	}
	return false
}

// TestCheckersAcceptInterleavedBatchStreams runs the software-pipelined
// engine at depths 2 and 4 and feeds the raw (genuinely interleaved)
// event stream to both invariant checkers: batch-keyed bookkeeping must
// hold the Lemma 8 bounds and reversal symmetry per batch regardless of
// how the batches' rounds interleave in emission order.
func TestCheckersAcceptInterleavedBatchStreams(t *testing.T) {
	g := gen.RMAT(6, 8, 42)
	sources := brandes.FirstKSources(g, 0, 16)
	h := maxFiniteDistance(g, sources)
	for _, depth := range []int{2, 4} {
		events := pipelinedEvents(t, depth)
		if !interleavedBatches(events) {
			t.Fatalf("depth %d: trace is not batch-interleaved; the pipeline did not overlap", depth)
		}
		if err := obs.CheckRoundBounds(events, h); err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if err := obs.CheckReversal(events); err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
	}
}

// TestPipelinedModelStreamMatchesSerial pins cross-depth determinism at
// the trace level: the canonical send + batch-summary stream of a
// pipelined run is byte-identical to the serial run's. (Phase events
// carry the coordinator's global round/seq numbering, which a pipeline
// legitimately interleaves differently, so they are excluded.)
func TestPipelinedModelStreamMatchesSerial(t *testing.T) {
	sendsAndBatches := func(events []obs.Event) []obs.Event {
		var out []obs.Event
		for _, e := range events {
			if e.Kind == obs.KindSend || e.Kind == obs.KindBatch {
				out = append(out, e)
			}
		}
		return out
	}
	want := canonicalJSONL(t, sendsAndBatches(pipelinedEvents(t, 1)))
	for _, depth := range []int{2, 4} {
		if got := canonicalJSONL(t, sendsAndBatches(pipelinedEvents(t, depth))); !bytes.Equal(got, want) {
			t.Fatalf("canonical send/batch stream at depth %d differs from the serial stream", depth)
		}
	}
}

// TestGoldenTraceDepth1Identity pins the refactor's depth-1 contract:
// running the golden workload with an explicit PipelineDepth of 1 (the
// serial loop through the new begin/complete exchange path) leaves the
// committed canonical fixture byte-identical.
func TestGoldenTraceDepth1Identity(t *testing.T) {
	g := gen.RMAT(5, 8, 3)
	pt := partition.CartesianCut(g, 2)
	sources := brandes.FirstKSources(g, 0, 8)
	tr := obs.NewTrace(traceCap, obs.LevelDetail)
	_, _, err := mrbcdist.RunChecked(g, pt, sources, mrbcdist.Options{
		BatchSize: 4, PipelineDepth: 1, Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := canonicalJSONL(t, requireComplete(t, tr))
	want, err := os.ReadFile(filepath.Join("testdata", "golden_trace.jsonl"))
	if err != nil {
		t.Fatalf("missing golden fixture: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("canonical trace with explicit PipelineDepth=1 diverged from the golden fixture")
	}
}

// TestPerturbedPipelineFixtureFails is the pipelined harness's negative
// control: a committed depth-2 trace in which two backward sends of one
// batch swapped rounds (an out-of-order reversal within that batch)
// must fail CheckReversal. Regenerated with -update.
func TestPerturbedPipelineFixtureFails(t *testing.T) {
	perturbed := filepath.Join("testdata", "perturbed_pipeline_trace.jsonl")
	if *update {
		events := obs.Canonical(pipelinedEvents(t, 2))
		// Swap the backward rounds of the first two backward sends of one
		// batch that landed in different rounds: the set of synchronized
		// pairs is untouched, only their within-batch order breaks.
		first := -1
		swapped := false
		for i := range events {
			if events[i].Kind != obs.KindSend || events[i].Dir != obs.DirBackward {
				continue
			}
			if first < 0 {
				first = i
				continue
			}
			if events[i].Batch == events[first].Batch && events[i].Round != events[first].Round {
				events[i].Round, events[first].Round = events[first].Round, events[i].Round
				swapped = true
				break
			}
		}
		if !swapped {
			t.Fatal("workload yielded no swappable backward sends")
		}
		f, err := os.Create(perturbed)
		if err != nil {
			t.Fatal(err)
		}
		if err := obs.WriteJSONL(f, events); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	f, err := os.Open(perturbed)
	if err != nil {
		t.Fatalf("missing perturbed pipeline fixture (run with -update to create): %v", err)
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.CheckReversal(events); err == nil {
		t.Fatal("CheckReversal accepted the out-of-order reversal")
	} else {
		t.Logf("reversal correctly rejected: %v", err)
	}
}
