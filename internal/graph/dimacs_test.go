package graph

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestDIMACSRoundTrip(t *testing.T) {
	g := FromWeightedEdges(4, []WeightedEdge{
		{U: 0, V: 1, Weight: 3}, {U: 1, V: 2, Weight: 1},
		{U: 2, V: 3, Weight: 7}, {U: 3, V: 0, Weight: 2},
	})
	var buf bytes.Buffer
	if err := g.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != 4 || g2.NumEdges() != 4 {
		t.Fatalf("n=%d m=%d", g2.NumVertices(), g2.NumEdges())
	}
	for u := 0; u < 4; u++ {
		d1, w1 := g.OutEdges(uint32(u))
		d2, w2 := g2.OutEdges(uint32(u))
		if len(d1) != len(d2) {
			t.Fatalf("vertex %d degree changed", u)
		}
		for i := range d1 {
			if d1[i] != d2[i] || w1[i] != w2[i] {
				t.Fatalf("vertex %d edge %d changed", u, i)
			}
		}
	}
}

func TestReadDIMACSValid(t *testing.T) {
	in := `c a comment
p sp 3 2
a 1 2 10
a 2 3 20
`
	g, err := ReadDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	d := g.Dijkstra(0)
	if d[2] != 30 {
		t.Fatalf("dist = %v", d)
	}
}

func TestReadDIMACSErrors(t *testing.T) {
	cases := map[string]string{
		"no-problem":      "a 1 2 3\n",
		"bad-problem":     "p xx 3 2\n",
		"dup-problem":     "p sp 2 0\np sp 2 0\n",
		"bad-arc":         "p sp 2 1\na 1 2\n",
		"zero-vertex":     "p sp 2 1\na 0 1 5\n",
		"vertex-too-big":  "p sp 2 1\na 1 3 5\n",
		"zero-weight":     "p sp 2 1\na 1 2 0\n",
		"unknown-record":  "p sp 2 0\nz 1\n",
		"wrong-arc-count": "p sp 2 5\na 1 2 1\n",
		"missing-problem": "c only a comment\n",
	}
	for name, in := range cases {
		if _, err := ReadDIMACS(strings.NewReader(in)); !errors.Is(err, ErrBadFormat) {
			t.Errorf("%s: err = %v, want ErrBadFormat", name, err)
		}
	}
}

func TestWeightedUnweightedView(t *testing.T) {
	g := FromWeightedEdges(3, []WeightedEdge{
		{U: 0, V: 1, Weight: 9}, {U: 1, V: 2, Weight: 9},
	})
	u := g.Unweighted()
	if u.NumEdges() != 2 || !u.HasEdge(0, 1) || !u.HasEdge(1, 2) {
		t.Fatal("unweighted view wrong")
	}
	if d := u.BFS(0); d[2] != 2 {
		t.Fatalf("BFS over unweighted view = %v", d)
	}
}
