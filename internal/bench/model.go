package bench

import (
	"fmt"

	"mrbc/internal/brandes"
	"mrbc/internal/core"
	"mrbc/internal/graph"
	"mrbc/internal/mrbcdist"
	"mrbc/internal/partition"
	"mrbc/internal/sbbc"
)

// ModelRow compares the analytical round model against measured BSP
// rounds for one input:
//
//   - MRBC: Lemma 8 predicts at most k+H rounds per batch per phase, so
//     ≈ 2·Σ_batches (k + H_batch); we bound H_batch by H over all
//     sources.
//   - SBBC: one round per BFS level each way per source, ≈
//     Σ_s (2·ecc(s) + 1).
type ModelRow struct {
	Input          Input
	H              uint32 // largest finite distance from the sources
	MRBCPredicted  int
	MRBCMeasured   int
	SBBCPredicted  int
	SBBCMeasured   int
	MRBCTighteness float64 // measured / predicted (≤ 1 when the bound holds)
	SBBCTightness  float64
}

// ModelCheck measures both algorithms and reports the model fit.
func ModelCheck(inputs []Input, scale Scale) []ModelRow {
	rows := make([]ModelRow, 0, len(inputs))
	for _, in := range inputs {
		g := in.Build()
		sources := brandes.FirstKSources(g, 0, in.NumSources)
		hosts := HostsAtScale(in.Class, scale)
		pt := partition.CartesianCut(g, hosts)

		h := core.MaxFiniteDistance(g, sources)
		batches := (in.NumSources + in.Batch - 1) / in.Batch
		mrbcPred := 0
		for b := 0; b < batches; b++ {
			k := in.Batch
			if rem := in.NumSources - b*in.Batch; rem < k {
				k = rem
			}
			mrbcPred += 2 * (k + int(h))
		}

		sbbcPred := 0
		for _, s := range sources {
			ecc := uint32(0)
			for _, d := range g.BFS(s) {
				if d != graph.InfDist && d > ecc {
					ecc = d
				}
			}
			sbbcPred += 2*int(ecc) + 1
		}

		_, mStats := mrbcdist.Run(g, pt, sources, mrbcdist.Options{BatchSize: in.Batch})
		_, sStats := sbbc.Run(g, pt, sources)

		row := ModelRow{
			Input:         in,
			H:             h,
			MRBCPredicted: mrbcPred,
			MRBCMeasured:  mStats.Rounds,
			SBBCPredicted: sbbcPred,
			SBBCMeasured:  sStats.Rounds,
		}
		if mrbcPred > 0 {
			row.MRBCTighteness = float64(mStats.Rounds) / float64(mrbcPred)
		}
		if sbbcPred > 0 {
			row.SBBCTightness = float64(sStats.Rounds) / float64(sbbcPred)
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatModel renders the model-vs-measured comparison.
func FormatModel(rows []ModelRow) string {
	header := []string{"input", "H", "MRBC pred", "MRBC meas", "fit",
		"SBBC pred", "SBBC meas", "fit"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Input.Name, fmt.Sprint(r.H),
			fmt.Sprint(r.MRBCPredicted), fmt.Sprint(r.MRBCMeasured),
			fmt.Sprintf("%.2f", r.MRBCTighteness),
			fmt.Sprint(r.SBBCPredicted), fmt.Sprint(r.SBBCMeasured),
			fmt.Sprintf("%.2f", r.SBBCTightness),
		})
	}
	return "Round model check: Lemma 8 (MRBC, 2(k+H)/batch) and level counting (SBBC)\n" +
		table(header, out)
}
