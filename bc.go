// Package mrbc computes betweenness centrality (BC) on unweighted
// directed graphs. It is a from-scratch Go reproduction of
//
//	"A Round-Efficient Distributed Betweenness Centrality Algorithm",
//	Hoang, Pontecorvi, Dathathri, Gill, You, Pingali, Ramachandran,
//	PPoPP 2019.
//
// The primary contribution, Min-Rounds BC (MRBC), pipelines the
// all-pairs-shortest-paths computation so that a batch of k sources
// costs at most 2(k+H) synchronous rounds (H = largest finite
// distance) instead of the ~2·k·H rounds of level-by-level Brandes —
// the property that makes it communication-efficient on distributed
// clusters.
//
// The package exposes:
//
//   - Betweenness: one entry point over five interchangeable engines —
//     MRBC (shared-memory batched or simulated-distributed), the exact
//     CONGEST-model MRBC of the paper's Section 3, and the paper's
//     baselines (Brandes, asynchronous Brandes, synchronous distributed
//     Brandes, Maximal-Frontier BC).
//   - ShortestPaths: the forward k-SSP phase alone (distances and
//     shortest-path counts).
//   - Graph construction, generators, and I/O re-exported from the
//     internal substrate.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of the paper's tables and figures.
package mrbc

import (
	"fmt"
	"sort"
	"time"

	"mrbc/internal/brandes"
	"mrbc/internal/core"
	"mrbc/internal/gen"
	"mrbc/internal/graph"
	"mrbc/internal/mfbc"
	"mrbc/internal/mrbcdist"
	"mrbc/internal/partition"
	"mrbc/internal/sbbc"
)

// Graph is a directed unweighted graph in CSR form.
type Graph = graph.Graph

// Builder accumulates edges for a Graph.
type Builder = graph.Builder

// InfDist marks an unreachable vertex in distance arrays.
const InfDist = graph.InfDist

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph with n vertices from an edge list.
func FromEdges(n int, edges [][2]uint32) *Graph { return graph.FromEdges(n, edges) }

// Load reads a graph from a file (text edge list, or the binary CSR
// format for ".gr"/".bin" extensions).
func Load(path string) (*Graph, error) { return graph.Load(path) }

// Algorithm selects a BC engine.
type Algorithm string

const (
	// MRBC is Min-Rounds BC, the paper's contribution: batched,
	// round-efficient, run either on shared memory (Hosts <= 1) or on
	// the simulated D-Galois cluster (Hosts > 1).
	MRBC Algorithm = "mrbc"
	// SBBC is Synchronous-Brandes BC: level-by-level BFS per source on
	// the same substrate.
	SBBC Algorithm = "sbbc"
	// ABBC is Asynchronous-Brandes BC: shared-memory, worklist-driven.
	ABBC Algorithm = "abbc"
	// MFBC is Maximal-Frontier BC: sparse-matrix Bellman-Ford.
	MFBC Algorithm = "mfbc"
	// Brandes is the sequential reference algorithm.
	Brandes Algorithm = "brandes"
	// Congest runs the paper's Section 3 algorithms on an exact
	// CONGEST-model simulation, reporting model rounds and messages.
	Congest Algorithm = "congest"
)

// PartitionPolicy selects how a distributed run splits the graph.
type PartitionPolicy string

const (
	// EdgeCut is the 1D outgoing edge-cut.
	EdgeCut PartitionPolicy = "edge-cut"
	// CartesianCut is the 2D Cartesian vertex-cut the paper uses at
	// scale.
	CartesianCut PartitionPolicy = "cartesian"
)

// Options configures Betweenness.
type Options struct {
	// Algorithm defaults to MRBC.
	Algorithm Algorithm
	// Hosts is the number of simulated hosts for MRBC/SBBC; values <= 1
	// run on shared memory without a cluster.
	Hosts int
	// Partition picks the partitioning policy for distributed runs;
	// defaults to CartesianCut.
	Partition PartitionPolicy
	// BatchSize is k for batched algorithms (MRBC, MFBC); default 32.
	BatchSize int
	// Workers bounds shared-memory parallelism. For ABBC, MFBC, and
	// parallel Brandes it is the worker-goroutine count. Shared-memory
	// MRBC has two composable levels: Workers sets the batch-level
	// parallelism (whole batches run concurrently on private engines),
	// and each batch additionally splits its per-round compute phase
	// across GOMAXPROCS/Workers goroutines (intra-batch parallelism;
	// see core.Options). When Workers == 0 the intra-batch level
	// defaults to GOMAXPROCS, so a single batch still uses every core.
	Workers int
	// ChunkSize is the ABBC worklist chunk size; default 8 (the paper
	// uses 64 for road networks).
	ChunkSize int
}

// Result holds BC scores and execution metrics.
type Result struct {
	// Scores[v] is the betweenness score of vertex v summed over the
	// requested sources (exact BC when all vertices are sources).
	Scores []float64
	// Rounds is the number of synchronous rounds executed, when the
	// engine is round-based (0 for ABBC/Brandes).
	Rounds int
	// Messages and Bytes count inter-host communication for
	// distributed engines, or CONGEST messages for Congest.
	Messages int64
	Bytes    int64
	// Duration is the wall-clock time of the computation.
	Duration time.Duration
}

// Betweenness computes betweenness centrality restricted to the given
// sources. Passing all vertices yields exact BC; the paper's
// evaluation samples a contiguous chunk (see Sources).
func Betweenness(g *Graph, sources []uint32, opts Options) (*Result, error) {
	if opts.Algorithm == "" {
		opts.Algorithm = MRBC
	}
	n := g.NumVertices()
	for _, s := range sources {
		if int(s) >= n {
			return nil, fmt.Errorf("mrbc: source %d out of range [0,%d)", s, n)
		}
	}
	start := time.Now()
	res := &Result{}
	switch opts.Algorithm {
	case Brandes:
		if opts.Workers > 1 {
			res.Scores = brandes.Parallel(g, sources, opts.Workers)
		} else {
			res.Scores = brandes.Sequential(g, sources)
		}
	case ABBC:
		res.Scores = brandes.Async(g, sources, brandes.AsyncConfig{
			Workers:   opts.Workers,
			ChunkSize: opts.ChunkSize,
		})
	case MFBC:
		scores, stats := mfbc.BC(g, sources, mfbc.Options{
			BatchSize: opts.BatchSize,
			Workers:   opts.Workers,
		})
		res.Scores = scores
		res.Rounds = stats.ForwardIterations + stats.BackwardIterations
	case MRBC:
		if opts.Hosts <= 1 {
			// Workers maps to batch-level parallelism; leaving
			// core.Options.Workers zero lets each batch default its
			// intra-batch workers to GOMAXPROCS/Parallelism.
			scores, stats := core.BC(g, sources, core.Options{
				BatchSize:   opts.BatchSize,
				Parallelism: opts.Workers,
			})
			res.Scores = scores
			res.Rounds = stats.Rounds()
		} else {
			pt, err := makePartition(g, opts)
			if err != nil {
				return nil, err
			}
			scores, stats := mrbcdist.Run(g, pt, sources, mrbcdist.Options{BatchSize: opts.BatchSize})
			res.Scores = scores
			res.Rounds = stats.Rounds
			res.Messages = stats.Messages
			res.Bytes = stats.Bytes
		}
	case SBBC:
		hosts := opts.Hosts
		if hosts <= 1 {
			hosts = 1
		}
		pt, err := makePartitionN(g, opts, hosts)
		if err != nil {
			return nil, err
		}
		scores, stats := sbbc.Run(g, pt, sources)
		res.Scores = scores
		res.Rounds = stats.Rounds
		res.Messages = stats.Messages
		res.Bytes = stats.Bytes
	case Congest:
		r := core.CongestBC(g, core.CongestOptions{Sources: sources, Mode: core.ModeQuiesce})
		res.Scores = r.BC
		res.Rounds = r.Stats.Rounds()
		res.Messages = r.Stats.Messages()
	default:
		return nil, fmt.Errorf("mrbc: unknown algorithm %q", opts.Algorithm)
	}
	res.Duration = time.Since(start)
	return res, nil
}

func makePartition(g *Graph, opts Options) (*partition.Partitioning, error) {
	return makePartitionN(g, opts, opts.Hosts)
}

func makePartitionN(g *Graph, opts Options, hosts int) (*partition.Partitioning, error) {
	switch opts.Partition {
	case EdgeCut:
		return partition.EdgeCut(g, hosts), nil
	case CartesianCut, "":
		return partition.CartesianCut(g, hosts), nil
	default:
		return nil, fmt.Errorf("mrbc: unknown partition policy %q", opts.Partition)
	}
}

// ShortestPaths runs the forward k-SSP phase of MRBC: for each source,
// the distance (InfDist when unreachable) and number of shortest paths
// to every vertex.
func ShortestPaths(g *Graph, sources []uint32) (dist [][]uint32, sigma [][]float64, err error) {
	n := g.NumVertices()
	for _, s := range sources {
		if int(s) >= n {
			return nil, nil, fmt.Errorf("mrbc: source %d out of range [0,%d)", s, n)
		}
	}
	dist, sigma, _ = core.APSPBatch(g, sources)
	return dist, sigma, nil
}

// Sources returns the contiguous source chunk [start, start+k), the
// sampling the paper's evaluation uses for comparability across
// engines.
func Sources(g *Graph, start, k int) []uint32 {
	return brandes.FirstKSources(g, start, k)
}

// AllSources returns every vertex, for exact BC.
func AllSources(g *Graph) []uint32 {
	out := make([]uint32, g.NumVertices())
	for i := range out {
		out[i] = uint32(i)
	}
	return out
}

// Ranked pairs a vertex with its score.
type Ranked struct {
	Vertex uint32
	Score  float64
}

// TopK returns the k highest-scoring vertices in descending score
// order (ties broken by vertex ID).
func TopK(scores []float64, k int) []Ranked {
	all := make([]Ranked, len(scores))
	for v, s := range scores {
		all[v] = Ranked{Vertex: uint32(v), Score: s}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].Vertex < all[j].Vertex
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// AutotuneBatchSize probes a few batch sizes on a prefix of the
// sources and returns the fastest, implementing the autotuning the
// paper leaves as future work (§5.2). Pass nil candidates for the
// default {16, 32, 64, 128}.
func AutotuneBatchSize(g *Graph, sources []uint32, candidates []int) int {
	return core.AutotuneBatch(g, sources, candidates, 0)
}

// Undirected returns the undirected version of g (each edge in both
// directions). Theorem 1 part III: all MRBC bounds hold on undirected
// graphs with the undirected diameter; compute undirected BC by
// passing the result to Betweenness.
func Undirected(g *Graph) *Graph { return g.Undirected() }

// MaxAbsDifference returns the largest absolute difference between two
// score vectors; handy for validating one engine against another.
func MaxAbsDifference(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var max float64
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}

// Generators, re-exported for examples and tools.

// GenerateRMAT generates a power-law R-MAT graph with 2^scale vertices.
func GenerateRMAT(scale, edgeFactor int, seed int64) *Graph {
	return gen.RMAT(scale, edgeFactor, seed)
}

// GenerateKronecker generates a Kronecker-style power-law graph.
func GenerateKronecker(scale, edgeFactor int, seed int64) *Graph {
	return gen.Kronecker(scale, edgeFactor, seed)
}

// GenerateRoadGrid generates a road-network-like high-diameter graph.
func GenerateRoadGrid(rows, cols int, seed int64) *Graph {
	return gen.RoadGrid(rows, cols, seed)
}

// GenerateWebCrawl generates a web-crawl-like graph: a power-law core
// with long pendant tails (non-trivial diameter).
func GenerateWebCrawl(coreScale, edgeFactor, tails, tailLen int, seed int64) *Graph {
	return gen.WebCrawl(coreScale, edgeFactor, tails, tailLen, seed)
}
