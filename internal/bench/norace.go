//go:build !race

package bench

// RaceEnabled reports whether this binary was built with the race
// detector. See race.go.
const RaceEnabled = false
