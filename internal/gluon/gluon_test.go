package gluon

import (
	"testing"

	"mrbc/internal/bitset"
	"mrbc/internal/gen"
	"mrbc/internal/partition"
)

func TestTopologyMirrorMasterListsMatch(t *testing.T) {
	g := gen.RMAT(8, 8, 3)
	pt := partition.CartesianCut(g, 4)
	topo := NewTopology(pt)
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			mir := topo.MirrorList(a, b)
			mas := topo.MasterList(a, b)
			if a == b {
				if len(mir) != 0 {
					t.Fatalf("host %d lists itself as mirror holder", a)
				}
				continue
			}
			if len(mir) != len(mas) {
				t.Fatalf("(%d,%d): list lengths %d vs %d", a, b, len(mir), len(mas))
			}
			for i := range mir {
				gidMirror := pt.Parts[a].GlobalID[mir[i]]
				gidMaster := pt.Parts[b].GlobalID[mas[i]]
				if gidMirror != gidMaster {
					t.Fatalf("(%d,%d)[%d]: vertices %d vs %d", a, b, i, gidMirror, gidMaster)
				}
				if pt.MasterOf[gidMirror] != int32(b) {
					t.Fatalf("vertex %d in list for master %d but mastered by %d",
						gidMirror, b, pt.MasterOf[gidMirror])
				}
			}
		}
	}
}

func TestTopologyCoversAllMirrors(t *testing.T) {
	g := gen.ErdosRenyi(200, 1200, 5)
	pt := partition.EdgeCut(g, 3)
	topo := NewTopology(pt)
	for a, p := range pt.Parts {
		mirrors := 0
		for _, m := range p.IsMaster {
			if !m {
				mirrors++
			}
		}
		listed := 0
		for b := 0; b < pt.NumHosts; b++ {
			listed += len(topo.MirrorList(a, b))
		}
		if mirrors != listed {
			t.Fatalf("host %d: %d mirrors but %d listed", a, mirrors, listed)
		}
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	w := &Writer{}
	w.U32(42)
	w.F64(3.5)
	w.U64(1 << 40)
	r := NewReader(w.Bytes())
	if r.U32() != 42 || r.F64() != 3.5 || r.U64() != 1<<40 {
		t.Fatal("round trip failed")
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining = %d", r.Remaining())
	}
}

func TestReaderTruncationPanics(t *testing.T) {
	r := NewReader([]byte{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.U32()
}

func TestEncodeDecodeUpdates(t *testing.T) {
	listLen := 100
	marked := bitset.New(listLen)
	marked.Set(3)
	marked.Set(64)
	marked.Set(99)
	payload := map[int]uint32{3: 30, 64: 640, 99: 990}
	buf := EncodeUpdates(listLen, marked, func(pos int, w *Writer) {
		w.U32(payload[pos])
	})
	if buf == nil {
		t.Fatal("expected non-nil buffer")
	}
	got := map[int]uint32{}
	DecodeUpdates(listLen, buf, func(pos int, r *Reader) {
		got[pos] = r.U32()
	})
	if len(got) != 3 || got[3] != 30 || got[64] != 640 || got[99] != 990 {
		t.Fatalf("decoded %v", got)
	}
}

func TestEncodeNothingIsNil(t *testing.T) {
	marked := bitset.New(50)
	if buf := EncodeUpdates(50, marked, func(int, *Writer) {}); buf != nil {
		t.Fatal("empty update set must encode to nil (nothing sent)")
	}
}

func TestDecodeLengthMismatchPanics(t *testing.T) {
	marked := bitset.New(10)
	marked.Set(0)
	buf := EncodeUpdates(10, marked, func(pos int, w *Writer) { w.U32(1) })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DecodeUpdates(20, buf, func(int, *Reader) {})
}

func TestDecodeTrailingBytesPanics(t *testing.T) {
	marked := bitset.New(10)
	marked.Set(0)
	buf := EncodeUpdates(10, marked, func(pos int, w *Writer) { w.U32(1); w.U32(2) })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	// Reader consumes only one U32 per position, leaving trailing bytes.
	DecodeUpdates(10, buf, func(pos int, r *Reader) { r.U32() })
}

func TestMetadataCompressionAmortizes(t *testing.T) {
	// The §5.3 effect: syncing many proxies in one round costs fewer
	// bytes than syncing them one per round, because the bitvector
	// metadata is paid per message.
	listLen := 512
	perPayload := 12

	// One round, 64 updates.
	marked := bitset.New(listLen)
	for i := 0; i < 64; i++ {
		marked.Set(i * 8)
	}
	batched := len(EncodeUpdates(listLen, marked, func(pos int, w *Writer) {
		w.U32(0)
		w.F64(0)
	}))

	// 64 rounds, one update each.
	spread := 0
	for i := 0; i < 64; i++ {
		m := bitset.New(listLen)
		m.Set(i * 8)
		spread += len(EncodeUpdates(listLen, m, func(pos int, w *Writer) {
			w.U32(0)
			w.F64(0)
		}))
	}
	if batched >= spread {
		t.Fatalf("batched sync (%d bytes) should beat spread sync (%d bytes)", batched, spread)
	}
	if batched <= 64*perPayload {
		t.Fatalf("batched bytes %d should still include metadata", batched)
	}
}
