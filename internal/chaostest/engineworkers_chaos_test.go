package chaostest

import (
	"testing"

	"mrbc/internal/brandes"
	"mrbc/internal/dgalois"
	"mrbc/internal/gen"
	"mrbc/internal/mrbcdist"
)

// TestFaultScheduleEngineWorkers crosses the two schedulers the stack
// now runs: random recoverable fault plans on the inter-host transport
// while each host's compute phases fan out over the intra-host
// work-stealing runner (EngineWorkers=4). The graph is sized so
// per-round frontiers exceed the inline gate — the pool genuinely
// engages — and every schedule must still converge to the Brandes
// oracle exactly.
func TestFaultScheduleEngineWorkers(t *testing.T) {
	g := gen.RMAT(9, 8, 5)
	sources := brandes.FirstKSources(g, 0, 24)
	oracle := brandes.Sequential(g, sources)

	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := 0; seed < seeds; seed++ {
		sync := []mrbcdist.SyncMode{mrbcdist.ArbitrationSync, mrbcdist.CandidateSync}[seed%2]
		hosts := []int{2, 4}[(seed/2)%2]
		pc := cuts[(seed/4)%len(cuts)]
		plan := dgalois.RandomPlan(uint64(1000+seed), maxRate, hosts)
		pt := pc.make(g, hosts)
		got, stats, err := mrbcdist.RunChecked(g, pt, sources, mrbcdist.Options{
			BatchSize: 16, Sync: sync, Fault: plan, EngineWorkers: 4,
		})
		if err != nil {
			t.Fatalf("seed=%d sync=%d %s hosts=%d: recoverable plan errored: %v",
				seed, sync, pc.name, hosts, err)
		}
		if !approxEqual(got, oracle, 1e-9) {
			t.Fatalf("seed=%d sync=%d %s hosts=%d: BC diverged from Brandes oracle under EngineWorkers=4",
				seed, sync, pc.name, hosts)
		}
		if stats.Faults == nil {
			t.Fatalf("seed=%d: stats carry no fault accounting", seed)
		}
	}
}
