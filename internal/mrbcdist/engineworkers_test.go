package mrbcdist

import (
	"testing"

	"mrbc/internal/brandes"
	"mrbc/internal/gen"
	"mrbc/internal/obs"
	"mrbc/internal/partition"
)

// TestEngineWorkersMatchSerial pins the intra-host work-stealing runner
// end to end: EngineWorkers=4 must reproduce the serial per-host
// engines' scores and canonical trace, while actually engaging the pool
// (nonzero shard-tasks) and emitting one worker event per
// (batch, host, worker).
func TestEngineWorkersMatchSerial(t *testing.T) {
	g := gen.RMAT(10, 8, 3)
	pt := partition.CartesianCut(g, 2)
	sources := brandes.FirstKSources(g, 0, 32)
	want := brandes.Sequential(g, sources)

	for _, sync := range []SyncMode{ArbitrationSync, CandidateSync} {
		serialTr := obs.NewTrace(1<<18, obs.LevelDetail)
		serial, _ := Run(g, pt, sources, Options{BatchSize: 32, Sync: sync, Trace: serialTr})
		parTr := obs.NewTrace(1<<18, obs.LevelDetail)
		reg := obs.NewRegistry()
		par, _ := Run(g, pt, sources, Options{
			BatchSize: 32, Sync: sync, EngineWorkers: 4, Trace: parTr, Metrics: reg,
		})
		if serialTr.Dropped() != 0 || parTr.Dropped() != 0 {
			t.Fatalf("sync=%d: trace ring too small (dropped %d/%d events)",
				sync, serialTr.Dropped(), parTr.Dropped())
		}
		if !approxEqual(par, want, 1e-9) {
			t.Fatalf("sync=%d: EngineWorkers=4 diverges from Brandes", sync)
		}
		if !approxEqual(par, serial, 1e-9) {
			t.Fatalf("sync=%d: EngineWorkers=4 diverges from serial engines", sync)
		}
		// The model stream is independent of the intra-host scheduler:
		// canonicalization drops worker events, and everything left must
		// match the serial run byte for byte.
		if d := obs.Diff(serialTr.Events(), parTr.Events()); d.Index != -1 {
			t.Fatalf("sync=%d: canonical trace diverges at %d: %+v vs %+v",
				sync, d.Index, d.A, d.B)
		}
		var workerEvents int
		var tasks int64
		for _, e := range parTr.Events() {
			if e.Kind == obs.KindWorker {
				workerEvents++
				tasks += e.Tasks
			}
		}
		if workerEvents == 0 {
			t.Fatalf("sync=%d: no worker events emitted", sync)
		}
		if tasks == 0 {
			t.Fatalf("sync=%d: pool never engaged (zero shard-tasks)", sync)
		}
		// Registry counters mirror the trace totals.
		snap := reg.Snapshot()
		var regTasks int64
		for _, v := range snap.CounterVecs["mrbc_worker_tasks_total"].Values {
			regTasks += v
		}
		if regTasks != tasks {
			t.Fatalf("sync=%d: registry tasks %d != trace tasks %d", sync, regTasks, tasks)
		}
	}
}
