package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a get-or-create store of named counters, gauges,
// histograms, and indexed instrument vectors. Components resolve their
// instruments once at setup and hold the pointers, so the hot path is a
// plain atomic operation — the registry map is never touched per event.
// All methods are safe for concurrent use, and safe on a nil *Registry:
// instrument getters then return detached instruments, so callers can
// thread an optional registry without guards.
//
// Names are validated at creation against the Prometheus metric-name
// charset [a-zA-Z_:][a-zA-Z0-9_:]*, and a name is pinned to the first
// instrument kind it was created as; violations panic with an
// obs-prefixed message. The exposition endpoint (internal/obs/serve)
// renders registries verbatim, so these invariants are what guarantee
// /metrics can never emit an unscrapeable page.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	cvecs    map[string]*CounterVec
	gvecs    map[string]*GaugeVec
	kinds    map[string]string // name -> instrument kind, for collision detection
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		cvecs:    make(map[string]*CounterVec),
		gvecs:    make(map[string]*GaugeVec),
		kinds:    make(map[string]string),
	}
}

// validMetricName reports whether name matches the Prometheus
// metric-name charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if len(name) == 0 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c == '_' || c == ':',
			c >= 'a' && c <= 'z',
			c >= 'A' && c <= 'Z',
			i > 0 && c >= '0' && c <= '9':
		default:
			return false
		}
	}
	return true
}

// validLabelName reports whether name matches the Prometheus
// label-name charset [a-zA-Z_][a-zA-Z0-9_]* (no colons).
func validLabelName(name string) bool {
	if len(name) == 0 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c == '_',
			c >= 'a' && c <= 'z',
			c >= 'A' && c <= 'Z',
			i > 0 && c >= '0' && c <= '9':
		default:
			return false
		}
	}
	return true
}

// checkName validates the metric name and pins it to one instrument
// kind; the caller holds r.mu. Panics (obs-prefixed, like gluon's
// malformed-input convention) on a bad name or cross-kind reuse —
// either would corrupt the text exposition.
func (r *Registry) checkName(name, kind string) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q (want [a-zA-Z_:][a-zA-Z0-9_:]*)", name))
	}
	if prev, ok := r.kinds[name]; ok && prev != kind {
		panic(fmt.Sprintf("obs: metric %q already registered as a %s, cannot reuse as a %s", name, prev, kind))
	}
	r.kinds[name] = kind
}

// Counter returns the named counter, creating it on first use. On a
// nil registry it returns a detached counter (usable, never reported).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "counter")
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. On a nil
// registry it returns a detached gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "gauge")
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// upper bounds (ascending; an implicit +Inf bucket is appended) on
// first use. Later calls ignore the bounds argument. On a nil registry
// it returns a detached histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return newHistogram(bounds)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "histogram")
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// CounterVec returns the named counter vector with at least n indexed
// counters, creating or growing it as needed (a vector shared across
// cluster sizes keeps its earlier entries: counter pointers stay valid
// across growth). The label names the index dimension in the text
// exposition (name{label="i"}). On a nil registry it returns a
// detached vector.
func (r *Registry) CounterVec(name, label string, n int) *CounterVec {
	if r == nil {
		return newCounterVec(label, n)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "counter vector")
	v, ok := r.cvecs[name]
	if !ok {
		v = newCounterVec(label, n)
		r.cvecs[name] = v
	} else {
		v.grow(n)
	}
	return v
}

// GaugeVec returns the named gauge vector with at least n indexed
// gauges, creating or growing it as needed. On a nil registry it
// returns a detached vector.
func (r *Registry) GaugeVec(name, label string, n int) *GaugeVec {
	if r == nil {
		return newGaugeVec(label, n)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "gauge vector")
	v, ok := r.gvecs[name]
	if !ok {
		v = newGaugeVec(label, n)
		r.gvecs[name] = v
	} else {
		v.grow(n)
	}
	return v
}

// CounterVec is an indexed family of counters reported as one metric
// with an integer-valued label (e.g. per-host byte totals). At is for
// setup time — components resolve each index's *Counter once and hold
// the pointer on the hot path.
type CounterVec struct {
	mu    sync.Mutex
	label string
	vals  []*Counter
}

func newCounterVec(label string, n int) *CounterVec {
	if !validLabelName(label) {
		panic(fmt.Sprintf("obs: invalid label name %q (want [a-zA-Z_][a-zA-Z0-9_]*)", label))
	}
	v := &CounterVec{label: label}
	v.grow(n)
	return v
}

func (v *CounterVec) grow(n int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for len(v.vals) < n {
		v.vals = append(v.vals, &Counter{})
	}
}

// At returns the counter at index i, growing the vector if needed.
func (v *CounterVec) At(i int) *Counter {
	v.grow(i + 1)
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.vals[i]
}

// Len returns the current vector length.
func (v *CounterVec) Len() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.vals)
}

// GaugeVec is an indexed family of gauges reported as one metric with
// an integer-valued label (e.g. per-host last-completed round).
type GaugeVec struct {
	mu    sync.Mutex
	label string
	vals  []*Gauge
}

func newGaugeVec(label string, n int) *GaugeVec {
	if !validLabelName(label) {
		panic(fmt.Sprintf("obs: invalid label name %q (want [a-zA-Z_][a-zA-Z0-9_]*)", label))
	}
	v := &GaugeVec{label: label}
	v.grow(n)
	return v
}

func (v *GaugeVec) grow(n int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for len(v.vals) < n {
		v.vals = append(v.vals, &Gauge{})
	}
}

// At returns the gauge at index i, growing the vector if needed.
func (v *GaugeVec) At(i int) *Gauge {
	v.grow(i + 1)
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.vals[i]
}

// Len returns the current vector length.
func (v *GaugeVec) Len() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.vals)
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomically settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores x.
func (g *Gauge) Set(x int64) { g.v.Store(x) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// DurationBuckets are the default histogram bounds for phase
// durations, in seconds.
var DurationBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10,
}

// Histogram is a fixed-bucket histogram with atomic counts. Observe is
// lock-free and allocation-free.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	i := sort.SearchFloat64s(h.bounds, x)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + x)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Snapshot is a point-in-time copy of a registry's instruments.
type Snapshot struct {
	Counters    map[string]int64             `json:"counters,omitempty"`
	Gauges      map[string]int64             `json:"gauges,omitempty"`
	Histograms  map[string]HistogramSnapshot `json:"histograms,omitempty"`
	CounterVecs map[string]VecSnapshot       `json:"counter_vecs,omitempty"`
	GaugeVecs   map[string]VecSnapshot       `json:"gauge_vecs,omitempty"`
}

// VecSnapshot is a point-in-time copy of one instrument vector: the
// value at each index, labeled Label="index" in the text exposition.
type VecSnapshot struct {
	Label  string  `json:"label"`
	Values []int64 `json:"values"`
}

// HistogramSnapshot is a point-in-time copy of one histogram.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"` // upper bounds; Counts has one extra +Inf bucket
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot copies every instrument's current value. Nil-safe.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Load()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Load()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			hs := HistogramSnapshot{
				Bounds: append([]float64(nil), h.bounds...),
				Counts: make([]int64, len(h.counts)),
				Count:  h.count.Load(),
				Sum:    math.Float64frombits(h.sum.Load()),
			}
			for i := range h.counts {
				hs.Counts[i] = h.counts[i].Load()
			}
			s.Histograms[name] = hs
		}
	}
	if len(r.cvecs) > 0 {
		s.CounterVecs = make(map[string]VecSnapshot, len(r.cvecs))
		for name, v := range r.cvecs {
			v.mu.Lock()
			vs := VecSnapshot{Label: v.label, Values: make([]int64, len(v.vals))}
			for i, c := range v.vals {
				vs.Values[i] = c.Load()
			}
			v.mu.Unlock()
			s.CounterVecs[name] = vs
		}
	}
	if len(r.gvecs) > 0 {
		s.GaugeVecs = make(map[string]VecSnapshot, len(r.gvecs))
		for name, v := range r.gvecs {
			v.mu.Lock()
			vs := VecSnapshot{Label: v.label, Values: make([]int64, len(v.vals))}
			for i, g := range v.vals {
				vs.Values[i] = g.Load()
			}
			v.mu.Unlock()
			s.GaugeVecs[name] = vs
		}
	}
	return s
}
