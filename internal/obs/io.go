package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// WriteJSONL writes events as one JSON object per line, in the given
// order (use Canonical first for a byte-stable file).
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEvents parses a JSONL stream produced by WriteJSONL. Blank lines
// are skipped.
func ReadEvents(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var events []Event
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// Canonical returns a copy of events in a deterministic total order
// with the wall-clock fields (StartNs, DurNs) stripped. Event content
// is a pure function of (graph, seed, options); only timings and
// concurrent emission order vary run to run, so the canonical form of
// the same configuration is byte-identical across worker counts.
func Canonical(events []Event) []Event {
	out := append([]Event(nil), events...)
	for i := range out {
		out[i].StartNs = 0
		out[i].DurNs = 0
	}
	sort.Slice(out, func(i, j int) bool { return canonLess(out[i], out[j]) })
	return out
}

func canonLess(a, b Event) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Batch != b.Batch {
		return a.Batch < b.Batch
	}
	if a.Dir != b.Dir {
		return a.Dir < b.Dir
	}
	if a.Round != b.Round {
		return a.Round < b.Round
	}
	if a.Seq != b.Seq {
		return a.Seq < b.Seq
	}
	if a.Host != b.Host {
		return a.Host < b.Host
	}
	if a.V != b.V {
		return a.V < b.V
	}
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Phase < b.Phase
}

// WriteCanonical writes Canonical(events) as JSONL: the byte-stable
// form golden-trace tests pin.
func WriteCanonical(w io.Writer, events []Event) error {
	return WriteJSONL(w, Canonical(events))
}

// ModelEvents filters events down to the paper-model stream: transport
// events (retries, framing, acks — artifacts of the fault layer) are
// dropped, everything else kept. The model stream of a faulty run is
// identical to the fault-free run's, mirroring the Stats.Bytes/Messages
// invariant.
func ModelEvents(events []Event) []Event {
	out := make([]Event, 0, len(events))
	for _, e := range events {
		if e.Kind != KindTransport {
			out = append(out, e)
		}
	}
	return out
}

// chromeEvent is one entry of the Chrome trace-event format
// (chrome://tracing, Perfetto): a complete ("X") slice per phase event.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int32          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders the phase events as a Chrome trace-event
// JSON array: one timeline row per host, one complete slice per
// (round, host, phase), with the volume counters attached as args.
// Non-phase events are skipped (they carry no wall-clock extent).
func WriteChromeTrace(w io.Writer, events []Event) error {
	var ces []chromeEvent
	for _, e := range events {
		if e.Kind != KindPhase {
			continue
		}
		ce := chromeEvent{
			Name: string(e.Phase),
			Ph:   "X",
			Ts:   float64(e.StartNs) / 1e3,
			Dur:  float64(e.DurNs) / 1e3,
			Pid:  0,
			Tid:  e.Host,
		}
		if e.Bytes > 0 || e.Messages > 0 {
			ce.Args = map[string]any{
				"round": e.Round, "bytes": e.Bytes, "messages": e.Messages,
			}
		} else {
			ce.Args = map[string]any{"round": e.Round}
		}
		ces = append(ces, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(ces)
}
