package core

import (
	"fmt"
	"sort"

	"mrbc/internal/congest"
	"mrbc/internal/graph"
)

// This file reconstructs the Lenzen-Peleg distributed APSP algorithm
// ([38], PODC'13) as described in the paper's Section 3.2, to make
// Theorem 1's comparison measurable: MRBC sends each (vertex, source)
// value exactly once "without the need for a status flag", while in
// Lenzen-Peleg each pair carries a ready/sent status, the smallest
// ready pair is transmitted each round, and a distance improvement
// resets the pair to ready — "this approach can result in multiple
// messages being sent from v for the same source s (in different
// rounds)".
//
// The reconstruction computes distances only (the original is an APSP
// algorithm; σ and predecessors are MRBC's additions) and runs with
// the same simulator, so rounds and message counts are directly
// comparable.

type lpStatus uint8

const (
	lpReady lpStatus = iota
	lpSent
)

type lpEntry struct {
	d      uint32
	s      uint32
	status lpStatus
}

// lpNode is the per-vertex state machine of the Lenzen-Peleg send
// discipline.
type lpNode struct {
	id   uint32
	out  []uint32
	list []lpEntry // sorted lexicographically by (d, s)
	dist map[uint32]uint32
}

func (nd *lpNode) Send(r int, send func(uint32, any)) {
	for i := range nd.list {
		if nd.list[i].status == lpReady {
			nd.list[i].status = lpSent
			msg := apspMsg{d: nd.list[i].d, s: nd.list[i].s}
			for _, w := range nd.out {
				send(w, msg)
			}
			return
		}
	}
}

func (nd *lpNode) Receive(r int, inbox []congest.Delivery) {
	for _, dl := range inbox {
		m, ok := dl.Payload.(apspMsg)
		if !ok {
			panic(fmt.Sprintf("core: lp node %d: unexpected message %T", nd.id, dl.Payload))
		}
		cand := m.d + 1
		cur, have := nd.dist[m.s]
		if have && cur <= cand {
			continue
		}
		if have {
			nd.removeEntry(cur, m.s)
		}
		nd.dist[m.s] = cand
		nd.insertEntry(cand, m.s)
	}
}

func (nd *lpNode) insertEntry(d, s uint32) {
	e := lpEntry{d: d, s: s, status: lpReady}
	i := sort.Search(len(nd.list), func(i int) bool {
		if nd.list[i].d != d {
			return nd.list[i].d > d
		}
		return nd.list[i].s >= s
	})
	nd.list = append(nd.list, lpEntry{})
	copy(nd.list[i+1:], nd.list[i:])
	nd.list[i] = e
}

func (nd *lpNode) removeEntry(d, s uint32) {
	i := sort.Search(len(nd.list), func(i int) bool {
		if nd.list[i].d != d {
			return nd.list[i].d > d
		}
		return nd.list[i].s >= s
	})
	if i >= len(nd.list) || nd.list[i].d != d || nd.list[i].s != s {
		panic(fmt.Sprintf("core: lp node %d: entry (%d,%d) not found", nd.id, d, s))
	}
	nd.list = append(nd.list[:i], nd.list[i+1:]...)
}

func (nd *lpNode) Done() bool {
	for _, e := range nd.list {
		if e.status == lpReady {
			return false
		}
	}
	return true
}

// LenzenPelegResult holds the APSP output and model costs of the
// baseline.
type LenzenPelegResult struct {
	Sources  []uint32
	Dist     [][]uint32 // Dist[i][v]
	Rounds   int
	Messages int64
}

// LenzenPelegAPSP runs the baseline on the CONGEST simulator. Sources
// nil means all vertices. Execution uses the same global termination
// detection as ModeQuiesce (capped at 2n rounds, the bound [38] proves
// for directed graphs when n is known).
func LenzenPelegAPSP(g *graph.Graph, sources []uint32) *LenzenPelegResult {
	n := g.NumVertices()
	if sources == nil {
		sources = make([]uint32, n)
		for i := range sources {
			sources[i] = uint32(i)
		}
	}
	srcIx := make(map[uint32]int, len(sources))
	for i, s := range sources {
		if int(s) >= n {
			panic(fmt.Sprintf("core: source %d out of range [0,%d)", s, n))
		}
		if _, dup := srcIx[s]; dup {
			panic(fmt.Sprintf("core: duplicate source %d", s))
		}
		srcIx[s] = i
	}
	nodes := make([]*lpNode, n)
	generic := make([]congest.Node, n)
	for v := 0; v < n; v++ {
		nodes[v] = &lpNode{
			id:   uint32(v),
			out:  g.OutNeighbors(uint32(v)),
			dist: make(map[uint32]uint32),
		}
		if _, ok := srcIx[uint32(v)]; ok {
			nodes[v].dist[uint32(v)] = 0
			nodes[v].insertEntry(0, uint32(v))
		}
		generic[v] = nodes[v]
	}
	net := congest.NewNetwork(g, generic)
	rounds, _ := net.Run(2*n+1, true)

	res := &LenzenPelegResult{
		Sources:  sources,
		Dist:     make([][]uint32, len(sources)),
		Rounds:   rounds,
		Messages: net.Messages,
	}
	for i, s := range sources {
		res.Dist[i] = make([]uint32, n)
		for v := 0; v < n; v++ {
			if d, ok := nodes[v].dist[s]; ok {
				res.Dist[i][v] = d
			} else {
				res.Dist[i][v] = graph.InfDist
			}
		}
	}
	return res
}
