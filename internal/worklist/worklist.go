// Package worklist provides a chunked concurrent FIFO worklist in the
// style of the Galois runtime, used by the Asynchronous Brandes BC
// baseline (ABBC, Prountzos & Pingali). Producers push items into
// per-worker chunks; full chunks move to a shared queue served oldest
// first. The approximate-FIFO order matters: for label-correcting
// relaxations it keeps processing close to breadth-first order, which
// bounds re-relaxations — a LIFO order can re-relax long paths
// quadratically often on high-diameter graphs. The chunk size trades
// contention against load balance, matching the paper's per-input
// tuning (§5.2: 64 for road-europe, 8 for the rest).
package worklist

import (
	"sync"
	"sync/atomic"
)

// List is a concurrent multi-producer multi-consumer worklist of
// uint64 items with approximate-FIFO ordering.
type List struct {
	chunkSize int
	mu        sync.Mutex
	queue     [][]uint64
	head      int // index of the oldest unconsumed chunk in queue
	// pending counts items pushed but not yet popped, across shared
	// and local chunks; used for termination detection.
	pending int64
}

// New returns a worklist with the given chunk size.
func New(chunkSize int) *List {
	if chunkSize <= 0 {
		panic("worklist: chunk size must be positive")
	}
	return &List{chunkSize: chunkSize}
}

// Handle is a per-worker view of the list. Each worker goroutine must
// use its own Handle; Handles are not safe to share.
type Handle struct {
	l         *List
	local     []uint64 // push buffer, consumed FIFO via localHead
	localHead int
	pop       []uint64 // chunk being consumed, FIFO via popHead
	popHead   int
}

// Handle creates a new per-worker handle.
func (l *List) Handle() *Handle {
	return &Handle{l: l, local: make([]uint64, 0, l.chunkSize)}
}

// Push adds an item.
func (h *Handle) Push(item uint64) {
	atomic.AddInt64(&h.l.pending, 1)
	h.local = append(h.local, item)
	if len(h.local)-h.localHead >= h.l.chunkSize {
		h.flush()
	}
}

// Flush publishes any locally buffered items to the shared queue so
// other workers can take them.
func (h *Handle) Flush() {
	if len(h.local)-h.localHead > 0 {
		h.flush()
	}
}

func (h *Handle) flush() {
	chunk := append([]uint64(nil), h.local[h.localHead:]...)
	h.local = h.local[:0]
	h.localHead = 0
	h.l.mu.Lock()
	h.l.queue = append(h.l.queue, chunk)
	h.l.mu.Unlock()
}

// Pop removes an item in approximate FIFO order, preferring the
// worker's current chunk, then its local buffer, then the oldest
// shared chunk. ok is false when the worker found nothing; the list
// may still receive work from other workers afterwards, so use Empty
// for global termination.
func (h *Handle) Pop() (item uint64, ok bool) {
	if h.popHead < len(h.pop) {
		item = h.pop[h.popHead]
		h.popHead++
		atomic.AddInt64(&h.l.pending, -1)
		return item, true
	}
	if h.localHead < len(h.local) {
		item = h.local[h.localHead]
		h.localHead++
		if h.localHead == len(h.local) {
			h.local = h.local[:0]
			h.localHead = 0
		}
		atomic.AddInt64(&h.l.pending, -1)
		return item, true
	}
	h.l.mu.Lock()
	if h.l.head < len(h.l.queue) {
		h.pop = h.l.queue[h.l.head]
		h.popHead = 0
		h.l.queue[h.l.head] = nil
		h.l.head++
		// Compact the consumed prefix occasionally.
		if h.l.head > 64 && h.l.head*2 >= len(h.l.queue) {
			h.l.queue = append(h.l.queue[:0], h.l.queue[h.l.head:]...)
			h.l.head = 0
		}
	}
	h.l.mu.Unlock()
	if h.popHead < len(h.pop) {
		item = h.pop[h.popHead]
		h.popHead++
		atomic.AddInt64(&h.l.pending, -1)
		return item, true
	}
	return 0, false
}

// Empty reports whether no items remain anywhere (including other
// workers' local buffers). Only meaningful as a termination check once
// all workers have gone idle.
func (l *List) Empty() bool { return atomic.LoadInt64(&l.pending) == 0 }

// Pending returns the current pending-item count.
func (l *List) Pending() int64 { return atomic.LoadInt64(&l.pending) }
