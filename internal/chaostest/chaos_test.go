// Package chaostest runs the seeded fault-schedule sweep: every engine
// that rides on the dgalois/gluon substrate must produce oracle-exact
// betweenness centrality under every recoverable fault schedule, and
// must terminate with a structured error (never hang) under an
// unrecoverable one. A failing case prints its seed so the exact
// schedule can be replayed with a one-line test filter.
package chaostest

import (
	"errors"
	"math"
	"testing"
	"time"

	"mrbc/internal/brandes"
	"mrbc/internal/dgalois"
	"mrbc/internal/gen"
	"mrbc/internal/gluon"
	"mrbc/internal/graph"
	"mrbc/internal/mrbcdist"
	"mrbc/internal/obs"
	"mrbc/internal/partition"
	"mrbc/internal/sbbc"
	"mrbc/internal/vprog"
)

const (
	sweepSeeds = 200 // full sweep size
	shortSeeds = 16  // -short cap (CI main job; the chaos job runs full)
	maxRate    = 0.20
)

func approxEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol*(1+math.Abs(a[i])) {
			return false
		}
	}
	return true
}

// engine is one BC implementation under test, wrapped to a common shape.
type engine struct {
	name string
	run  func(g *graph.Graph, pt *partition.Partitioning, sources []uint32, plan *dgalois.FaultPlan) ([]float64, dgalois.Stats, error)
}

var engines = []engine{
	{"mrbc-arb", func(g *graph.Graph, pt *partition.Partitioning, sources []uint32, plan *dgalois.FaultPlan) ([]float64, dgalois.Stats, error) {
		return mrbcdist.RunChecked(g, pt, sources, mrbcdist.Options{BatchSize: 8, Sync: mrbcdist.ArbitrationSync, Fault: plan})
	}},
	{"mrbc-cand", func(g *graph.Graph, pt *partition.Partitioning, sources []uint32, plan *dgalois.FaultPlan) ([]float64, dgalois.Stats, error) {
		return mrbcdist.RunChecked(g, pt, sources, mrbcdist.Options{BatchSize: 8, Sync: mrbcdist.CandidateSync, Fault: plan})
	}},
	// Software-pipelined batches (small batches so the 16-source jobs
	// really keep two in flight): the reliable transport's retransmission
	// machinery must compose with the per-batch exchange-ID streams.
	{"mrbc-arb-pipe2", func(g *graph.Graph, pt *partition.Partitioning, sources []uint32, plan *dgalois.FaultPlan) ([]float64, dgalois.Stats, error) {
		return mrbcdist.RunChecked(g, pt, sources, mrbcdist.Options{BatchSize: 4, Sync: mrbcdist.ArbitrationSync, Fault: plan, PipelineDepth: 2})
	}},
	{"sbbc", func(g *graph.Graph, pt *partition.Partitioning, sources []uint32, plan *dgalois.FaultPlan) ([]float64, dgalois.Stats, error) {
		return sbbc.RunOptsChecked(g, pt, sources, sbbc.Options{Fault: plan})
	}},
}

type cut struct {
	name string
	make func(g *graph.Graph, hosts int) *partition.Partitioning
}

var cuts = []cut{
	{"edge-cut", partition.EdgeCut},
	{"cartesian", partition.CartesianCut},
}

var hostCounts = []int{2, 4, 8}

// TestFaultScheduleSweep is the chaos differential test: seeds 0..N-1
// each derive a random recoverable FaultPlan (rates up to 20%) and are
// spread round-robin over engine x partition-policy x host-count, so
// the full sweep covers every cell of the matrix many times over.
func TestFaultScheduleSweep(t *testing.T) {
	graphs := []*graph.Graph{
		gen.RMAT(6, 8, 42),
		gen.RoadGrid(6, 6, 7),
	}
	oracles := make([][]float64, len(graphs))
	sourceSets := make([][]uint32, len(graphs))
	for i, g := range graphs {
		numSrc := 16
		if n := g.NumVertices(); n < numSrc {
			numSrc = n
		}
		sourceSets[i] = brandes.FirstKSources(g, 0, numSrc)
		oracles[i] = brandes.Sequential(g, sourceSets[i])
	}

	seeds := sweepSeeds
	if testing.Short() {
		seeds = shortSeeds
	}
	for seed := 0; seed < seeds; seed++ {
		eng := engines[seed%len(engines)]
		pc := cuts[(seed/len(engines))%len(cuts)]
		hosts := hostCounts[(seed/len(engines)/len(cuts))%len(hostCounts)]
		gi := seed % len(graphs)

		g := graphs[gi]
		plan := dgalois.RandomPlan(uint64(seed), maxRate, hosts)
		pt := pc.make(g, hosts)
		got, stats, err := eng.run(g, pt, sourceSets[gi], plan)
		if err != nil {
			t.Fatalf("seed=%d %s %s hosts=%d: recoverable plan errored: %v",
				seed, eng.name, pc.name, hosts, err)
		}
		if !approxEqual(got, oracles[gi], 1e-9) {
			t.Fatalf("seed=%d %s %s hosts=%d: BC diverged from Brandes oracle",
				seed, eng.name, pc.name, hosts)
		}
		if stats.Faults == nil {
			t.Fatalf("seed=%d: stats carry no fault accounting", seed)
		}
	}
}

// TestFaultVolumeAccounting pins the retry/volume separation: under
// faults the paper-model Bytes/Messages must equal the fault-free run's
// (each logical payload counted once), with all overhead isolated in
// FaultStats.
func TestFaultVolumeAccounting(t *testing.T) {
	g := gen.RMAT(6, 8, 42)
	pt := partition.EdgeCut(g, 4)
	sources := brandes.FirstKSources(g, 0, 16)

	_, clean, err := mrbcdist.RunChecked(g, pt, sources, mrbcdist.Options{BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	plan := &dgalois.FaultPlan{Seed: 99, Drop: 0.15, Dup: 0.1, Corrupt: 0.1, AckDrop: 0.1}
	_, faulty, err := mrbcdist.RunChecked(g, pt, sources, mrbcdist.Options{BatchSize: 8, Fault: plan})
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Bytes != clean.Bytes || faulty.Messages != clean.Messages {
		t.Fatalf("paper-model volume polluted by retries: clean %d B/%d msgs, faulty %d B/%d msgs",
			clean.Bytes, clean.Messages, faulty.Bytes, faulty.Messages)
	}
	if faulty.Faults.RetryMessages == 0 || faulty.Faults.RetryBytes == 0 {
		t.Fatal("faulty run recorded no retries despite 15% drop rate")
	}
}

// TestUnrecoverablePlanErrorsNotHangs drives each engine with a
// permanently stalled host and demands a structured *FaultError within
// a wall-clock budget.
func TestUnrecoverablePlanErrorsNotHangs(t *testing.T) {
	g := gen.RoadGrid(5, 5, 1)
	sources := brandes.FirstKSources(g, 0, 8)
	for _, eng := range engines {
		t.Run(eng.name, func(t *testing.T) {
			plan := &dgalois.FaultPlan{
				Seed:          1,
				DeadlineSteps: 16,
				Stalls:        []dgalois.Stall{{Host: 1, Exchange: 2, Steps: -1}},
			}
			pt := partition.EdgeCut(g, 4)
			done := make(chan error, 1)
			go func() {
				_, _, err := eng.run(g, pt, sources, plan)
				done <- err
			}()
			select {
			case err := <-done:
				var fe *dgalois.FaultError
				if !errors.As(err, &fe) {
					t.Fatalf("got %v, want *dgalois.FaultError", err)
				}
				if fe.Host != 1 {
					t.Fatalf("error implicates host %d, want stalled host 1", fe.Host)
				}
			case <-time.After(60 * time.Second):
				t.Fatal("engine hung on permanently stalled host")
			}
		})
	}
}

// TestVertexProgramsUnderFaults covers the vprog layer's fault path:
// BFS distances computed through the faulty transport must match the
// fault-free run exactly (integer labels, so equality is bitwise).
func TestVertexProgramsUnderFaults(t *testing.T) {
	g := gen.RMAT(7, 8, 11)
	pt := partition.CartesianCut(g, 4)
	prog := vprog.PushProgram{
		Init: func(gid uint32) (uint64, bool) {
			if gid == 0 {
				return 0, true
			}
			return math.MaxUint64, false
		},
		Relax:  func(l uint64) uint64 { return l + 1 },
		Better: func(a, b uint64) bool { return a < b },
	}
	want, _, err := vprog.RunPushPlan(g, pt, prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	seeds := 24
	if testing.Short() {
		seeds = 6
	}
	for seed := 0; seed < seeds; seed++ {
		plan := dgalois.RandomPlan(uint64(1000+seed), maxRate, pt.NumHosts)
		got, stats, err := vprog.RunPushPlan(g, pt, prog, plan)
		if err != nil {
			t.Fatalf("seed=%d: recoverable plan errored: %v", 1000+seed, err)
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("seed=%d: BFS label of vertex %d diverged under faults", 1000+seed, v)
			}
		}
		if stats.Faults == nil {
			t.Fatalf("seed=%d: no fault accounting", 1000+seed)
		}
	}
}

// TestTraceAccountingOracle cross-checks the trace against the stats:
// summing a complete phase-level trace's events must reproduce the
// cluster's Stats exactly — paper-model bytes and messages (from both
// the sender and receiver side), the per-format encoding mix, and
// every transport counter — across engines, pinned wire formats, and
// fault plans.
func TestTraceAccountingOracle(t *testing.T) {
	g := gen.RMAT(6, 8, 42)
	sources := brandes.FirstKSources(g, 0, 16)
	hosts := 4
	encodings := []gluon.Format{gluon.FormatAuto, gluon.FormatDense, gluon.FormatSparse}
	type run struct {
		name string
		do   func(tr *obs.Trace, enc gluon.Format, plan *dgalois.FaultPlan) (dgalois.Stats, error)
	}
	runs := []run{
		{"mrbc-arb", func(tr *obs.Trace, enc gluon.Format, plan *dgalois.FaultPlan) (dgalois.Stats, error) {
			_, s, err := mrbcdist.RunChecked(g, partition.EdgeCut(g, hosts), sources,
				mrbcdist.Options{BatchSize: 8, Encoding: enc, Fault: plan, Trace: tr})
			return s, err
		}},
		{"mrbc-cand", func(tr *obs.Trace, enc gluon.Format, plan *dgalois.FaultPlan) (dgalois.Stats, error) {
			_, s, err := mrbcdist.RunChecked(g, partition.CartesianCut(g, hosts), sources,
				mrbcdist.Options{BatchSize: 8, Sync: mrbcdist.CandidateSync, Encoding: enc, Fault: plan, Trace: tr})
			return s, err
		}},
		{"sbbc", func(tr *obs.Trace, enc gluon.Format, plan *dgalois.FaultPlan) (dgalois.Stats, error) {
			_, s, err := sbbc.RunOptsChecked(g, partition.EdgeCut(g, hosts), sources,
				sbbc.Options{Encoding: enc, Fault: plan, Trace: tr})
			return s, err
		}},
	}
	for _, r := range runs {
		for _, enc := range encodings {
			for _, seed := range []int{-1, 5} { // -1: perfect network
				var plan *dgalois.FaultPlan
				if seed >= 0 {
					plan = dgalois.RandomPlan(uint64(seed), maxRate, hosts)
				}
				tr := obs.NewTrace(1<<18, obs.LevelPhase)
				stats, err := r.do(tr, enc, plan)
				if err != nil {
					t.Fatalf("%s enc=%v seed=%d: %v", r.name, enc, seed, err)
				}
				if tr.Dropped() > 0 {
					t.Fatalf("%s enc=%v seed=%d: trace dropped %d events", r.name, enc, seed, tr.Dropped())
				}
				tot := obs.Sum(tr.Events())
				if tot.PackBytes != stats.Bytes || tot.UnpackBytes != stats.Bytes {
					t.Fatalf("%s enc=%v seed=%d: trace bytes pack=%d unpack=%d, stats %d",
						r.name, enc, seed, tot.PackBytes, tot.UnpackBytes, stats.Bytes)
				}
				if tot.PackMessages != stats.Messages || tot.UnpackMessages != stats.Messages {
					t.Fatalf("%s enc=%v seed=%d: trace messages pack=%d unpack=%d, stats %d",
						r.name, enc, seed, tot.PackMessages, tot.UnpackMessages, stats.Messages)
				}
				if tot.Dense != stats.Encoding.Dense || tot.Sparse != stats.Encoding.Sparse || tot.All != stats.Encoding.All {
					t.Fatalf("%s enc=%v seed=%d: trace format mix %d/%d/%d, stats %d/%d/%d",
						r.name, enc, seed, tot.Dense, tot.Sparse, tot.All,
						stats.Encoding.Dense, stats.Encoding.Sparse, stats.Encoding.All)
				}
				if plan == nil {
					if tot.Retries != 0 || tot.FrameBytes != 0 || tot.Injected != 0 {
						t.Fatalf("%s enc=%v: perfect network produced transport activity: %+v", r.name, enc, tot)
					}
					continue
				}
				f := stats.Faults
				injected := f.Drops + f.Dups + f.Delays + f.Truncations + f.Corruptions + f.Reorders + f.AckDrops
				if tot.Retries != f.RetryMessages || tot.RetryBytes != f.RetryBytes ||
					tot.FrameBytes != f.FrameBytes || tot.AckMessages != f.AckMessages ||
					tot.AckBytes != f.AckBytes || tot.DeliverySteps != f.DeliverySteps ||
					tot.MaxSteps != int64(f.MaxDeliverySteps) || tot.Injected != injected ||
					tot.Stalled != f.StalledSteps {
					t.Fatalf("%s enc=%v seed=%d: transport totals diverged:\n trace %+v\n stats %+v",
						r.name, enc, seed, tot, *f)
				}
			}
		}
	}
}
