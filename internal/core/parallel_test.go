package core

import (
	"testing"

	"mrbc/internal/gen"
)

// forceParallel lowers the inline gate to zero so every round fans out
// to the pool, returning a restore function. The gate is a pure
// inline-vs-pool dispatch — results are identical either way — but
// tests of the stealing path need the pool actually exercised on
// test-sized graphs.
func forceParallel() func() {
	old := inlineFrontierLimit
	inlineFrontierLimit = 0
	return func() { inlineFrontierLimit = old }
}

// TestPoolRunsEveryTaskOnce drives the work-stealing pool directly
// through many phases and checks each task of each phase runs exactly
// once, whichever worker claims it, and that the per-worker counters
// account for every execution.
func TestPoolRunsEveryTaskOnce(t *testing.T) {
	const workers, tasks, phases = 4, 64, 200
	p := newWSPool(workers)
	defer p.close()
	counts := make([]int32, tasks)
	for ph := 0; ph < phases; ph++ {
		for i := range counts {
			counts[i] = 0
		}
		p.runPhase(tasks, func(task, worker int) {
			counts[task]++ // tasks are distinct; claims are exclusive
			p.cells[worker].staged++
		})
		for task, c := range counts {
			if c != 1 {
				t.Fatalf("phase %d: task %d ran %d times", ph, task, c)
			}
		}
		if got := p.flushStaged(); got != tasks {
			t.Fatalf("phase %d: flushed %d staged, want %d", ph, got, tasks)
		}
	}
	var executed, flushes int64
	for i := range p.cells {
		executed += p.cells[i].tasks
		flushes += p.cells[i].flushes
	}
	if executed != int64(tasks*phases) {
		t.Fatalf("worker cells account for %d tasks, want %d", executed, tasks*phases)
	}
	if flushes == 0 {
		t.Fatal("no phase-boundary counter flushes recorded")
	}
}

// TestRunToRunDeterminismUnderStealing runs the same configuration
// repeatedly with the pool forced on: stealing reshuffles which worker
// executes which shard-task, but scores must stay bitwise identical
// run to run and equal to the serial path.
func TestRunToRunDeterminismUnderStealing(t *testing.T) {
	defer forceParallel()()
	g := gen.RMAT(9, 8, 41)
	sources := make([]uint32, 16)
	for i := range sources {
		sources[i] = uint32(i * 3)
	}
	opts := Options{BatchSize: 8, Workers: 4}
	ref, refStats := BC(g, sources, Options{BatchSize: 8, Workers: 1})
	for run := 0; run < 5; run++ {
		got, stats := BC(g, sources, opts)
		if stats.ParallelRounds == 0 {
			t.Fatal("forced-parallel run executed no pool rounds")
		}
		for v := range ref {
			if got[v] != ref[v] {
				t.Fatalf("run %d: BC(%d) = %v, serial %v (not bitwise equal)", run, v, got[v], ref[v])
			}
		}
		if stats.LabelsSynced != refStats.LabelsSynced || stats.Rounds() != refStats.Rounds() {
			t.Fatalf("run %d: stats diverged: %+v vs %+v", run, stats, refStats)
		}
	}
}

// TestTinyFrontiersStayInline pins the inline gate: even with an
// explicit 8-worker request, a graph whose total label mass fits under
// the gate never fans a round out to the pool, so the run costs serial
// bucket time (no barriers, no steals).
func TestTinyFrontiersStayInline(t *testing.T) {
	g := gen.RoadGrid(4, 4, 7) // 16 vertices × batch 8 = 128 ≤ gate
	sources := []uint32{0, 3, 5, 7, 9, 11, 13, 15}
	_, stats := BC(g, sources, Options{BatchSize: 8, Workers: 8})
	if stats.ParallelRounds != 0 {
		t.Fatalf("tiny frontier fanned out: %d parallel rounds", stats.ParallelRounds)
	}
	if stats.InlineRounds == 0 {
		t.Fatal("no inline rounds recorded")
	}
	if stats.Steals != 0 || stats.FailedSteals != 0 {
		t.Fatalf("tiny frontier touched the pool: %d steals, %d failed", stats.Steals, stats.FailedSteals)
	}
}

// TestRunnerWorkerStats checks the per-worker counters a forced
// parallel run reports: every parallel phase's tasks are accounted to
// some worker, and phase-boundary flushes happened.
func TestRunnerWorkerStats(t *testing.T) {
	defer forceParallel()()
	g := gen.RMAT(8, 8, 17)
	e := NewEngineOpts(g, 4, EngineOpts{Shards: ParallelShards(g.NumVertices())})
	for i, s := range []uint32{0, 7, 19, 31} {
		e.InitSource(s, i, true)
	}
	run := NewRunner(e, 4)
	defer run.Close()
	var stats RunStats
	R := run.forward(&stats)
	run.backward(R, &stats)
	ws := run.WorkerStats()
	if len(ws) != 4 {
		t.Fatalf("WorkerStats returned %d workers, want 4", len(ws))
	}
	var tasks, flushes int64
	for _, w := range ws {
		tasks += w.Tasks
		flushes += w.Flushes
	}
	if run.parallelRounds == 0 {
		t.Fatal("no parallel rounds executed")
	}
	// Each parallel forward round is 2 phases of NumShards tasks; the
	// backward StartBackward phase adds one more. Totals must match.
	if tasks == 0 || tasks%int64(e.NumShards()) != 0 {
		t.Fatalf("task total %d not a multiple of shard count %d", tasks, e.NumShards())
	}
	if flushes == 0 {
		t.Fatal("no counter flushes recorded")
	}
}
