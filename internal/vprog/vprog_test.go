package vprog

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mrbc/internal/gen"
	"mrbc/internal/graph"
	"mrbc/internal/partition"
)

func TestBFSMatchesSequential(t *testing.T) {
	inputs := map[string]*graph.Graph{
		"rmat": gen.RMAT(8, 8, 3),
		"grid": gen.RoadGrid(12, 12, 3),
		"path": gen.Path(30),
	}
	for name, g := range inputs {
		want := g.BFS(0)
		for _, hosts := range []int{1, 2, 4} {
			for _, pt := range []*partition.Partitioning{
				partition.EdgeCut(g, hosts), partition.CartesianCut(g, hosts),
			} {
				got, stats := BFS(g, pt, 0)
				for v := range want {
					if got[v] != want[v] {
						t.Fatalf("%s %s hosts=%d: dist[%d] = %d, want %d",
							name, pt.Policy, hosts, v, got[v], want[v])
					}
				}
				if stats.Rounds == 0 {
					t.Fatalf("%s: no rounds recorded", name)
				}
			}
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two components: {0..4} ring and {5..7} path, plus isolated 8.
	b := graph.NewBuilder(9)
	for i := 0; i < 5; i++ {
		b.AddEdge(uint32(i), uint32((i+1)%5))
		b.AddEdge(uint32((i+1)%5), uint32(i))
	}
	b.AddEdge(5, 6)
	b.AddEdge(6, 5)
	b.AddEdge(6, 7)
	b.AddEdge(7, 6)
	g := b.Build()
	pt := partition.EdgeCut(g, 3)
	comp, _ := ConnectedComponents(g, pt)
	for v := 0; v < 5; v++ {
		if comp[v] != 0 {
			t.Fatalf("comp[%d] = %d, want 0", v, comp[v])
		}
	}
	for v := 5; v < 8; v++ {
		if comp[v] != 5 {
			t.Fatalf("comp[%d] = %d, want 5", v, comp[v])
		}
	}
	if comp[8] != 8 {
		t.Fatalf("comp[8] = %d, want 8", comp[8])
	}
}

// ccReference computes weakly-connected component minima sequentially.
// Note ConnectedComponents propagates along directed edges only, so it
// labels vertices with the minimum vertex that REACHES them through
// directed label propagation... over the push program the label flows
// along out-edges; repeated until fixpoint this yields, for each v, the
// minimum u with a directed path u ->* v (including v itself).
func ccReference(g *graph.Graph) []uint32 {
	n := g.NumVertices()
	out := make([]uint32, n)
	for v := range out {
		out[v] = uint32(v)
	}
	for changed := true; changed; {
		changed = false
		g.Edges(func(u, v uint32) {
			if out[u] < out[v] {
				out[v] = out[u]
				changed = true
			}
		})
	}
	return out
}

func TestQuickCCAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		b := graph.NewBuilder(n)
		for i := 0; i < rng.Intn(4*n); i++ {
			b.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
		}
		g := b.Build()
		want := ccReference(g)
		hosts := 1 + rng.Intn(4)
		got, _ := ConnectedComponents(g, partition.CartesianCut(g, hosts))
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// pagerankReference runs the same pull iteration sequentially.
func pagerankReference(g *graph.Graph, damping float64, iters int) []float64 {
	n := g.NumVertices()
	rank := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	next := make([]float64, n)
	for it := 0; it < iters; it++ {
		for w := 0; w < n; w++ {
			var acc float64
			for _, u := range g.InNeighbors(uint32(w)) {
				if d := g.OutDegree(u); d > 0 {
					acc += rank[u] / float64(d)
				}
			}
			next[w] = (1-damping)/float64(n) + damping*acc
		}
		rank, next = next, rank
	}
	return rank
}

func TestPageRankMatchesReference(t *testing.T) {
	g := gen.RMAT(8, 8, 9)
	want := pagerankReference(g, 0.85, 15)
	for _, hosts := range []int{1, 2, 4} {
		pt := partition.CartesianCut(g, hosts)
		got, stats := PageRank(g, pt, PageRankOptions{Damping: 0.85, Iterations: 15})
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-12*(1+want[v]) {
				t.Fatalf("hosts=%d: rank[%d] = %v, want %v", hosts, v, got[v], want[v])
			}
		}
		if stats.Rounds != 15 {
			t.Fatalf("rounds = %d, want 15", stats.Rounds)
		}
	}
}

func TestPageRankDefaultsAndRanking(t *testing.T) {
	// The hub of a star with back edges collects the highest rank.
	g := gen.Star(50)
	pt := partition.EdgeCut(g, 2)
	ranks, _ := PageRank(g, pt, PageRankOptions{})
	for v := 1; v < 50; v++ {
		if ranks[v] >= ranks[0] {
			t.Fatalf("leaf %d ranked above the hub", v)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := graph.FromEdges(4, [][2]uint32{{0, 1}, {2, 3}})
	pt := partition.EdgeCut(g, 2)
	dist, _ := BFS(g, pt, 0)
	if dist[0] != 0 || dist[1] != 1 {
		t.Fatalf("dist = %v", dist)
	}
	if dist[2] != graph.InfDist || dist[3] != graph.InfDist {
		t.Fatalf("unreachable distances wrong: %v", dist)
	}
}

func TestIncompleteProgramPanics(t *testing.T) {
	g := gen.Path(3)
	pt := partition.EdgeCut(g, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RunPush(g, pt, PushProgram{})
}

func BenchmarkDistributedBFS(b *testing.B) {
	g := gen.RMAT(11, 8, 1)
	pt := partition.CartesianCut(g, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = BFS(g, pt, 0)
	}
}

func BenchmarkDistributedPageRank(b *testing.B) {
	g := gen.RMAT(10, 8, 1)
	pt := partition.CartesianCut(g, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = PageRank(g, pt, PageRankOptions{Iterations: 10})
	}
}
