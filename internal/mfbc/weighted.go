package mfbc

import (
	"fmt"
	"runtime"
	"sort"

	"mrbc/internal/graph"
	"mrbc/internal/matrix"
)

// Weighted MFBC. The original system's selling point is weighted
// support via Bellman-Ford frontier products (§5: "note that ABBC and
// MFBC can also handle weighted graphs"). The weighted forward sweep
// iterates masked (min, +) frontier products until distances reach a
// fixpoint; unlike the unweighted case, a vertex's distance can
// improve after it has already propagated, so path counts cannot be
// pushed alongside distances without delta corrections. Following the
// settle-then-count structure, σ and the dependencies are computed by
// distance-ordered sweeps once distances are final — the same masked
// products, ordered by the now-known distances.

// WeightedOptions configures a weighted MFBC run.
type WeightedOptions struct {
	Workers int // source-parallelism; default GOMAXPROCS
}

// WeightedBC computes weighted betweenness centrality restricted to
// sources.
func WeightedBC(g *graph.Weighted, sources []uint32, opts WeightedOptions) []float64 {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	n := g.NumVertices()
	for _, s := range sources {
		if int(s) >= n {
			panic(fmt.Sprintf("mfbc: source %d out of range [0,%d)", s, n))
		}
	}
	partials := make([][]float64, len(sources))
	matrix.ParallelOverSources(len(sources), opts.Workers, func(j int) {
		partials[j] = weightedSingleSource(g, sources[j])
	})
	scores := make([]float64, n)
	for _, p := range partials {
		for v, x := range p {
			scores[v] += x
		}
	}
	return scores
}

func weightedSingleSource(g *graph.Weighted, s uint32) []float64 {
	n := g.NumVertices()

	// Forward: Bellman-Ford with a frontier (the masked min-plus
	// product). A vertex re-enters the frontier whenever its distance
	// improves.
	dist := make([]uint64, n)
	for i := range dist {
		dist[i] = graph.InfWeightedDist
	}
	dist[s] = 0
	frontier := []uint32{s}
	inFrontier := make([]bool, n)
	inFrontier[s] = true
	for len(frontier) > 0 {
		next := frontier[:0:0]
		for _, u := range frontier {
			inFrontier[u] = false
		}
		for _, u := range frontier {
			du := dist[u]
			dsts, ws := g.OutEdges(u)
			for i, v := range dsts {
				if nd := du + uint64(ws[i]); nd < dist[v] {
					dist[v] = nd
					if !inFrontier[v] {
						inFrontier[v] = true
						next = append(next, v)
					}
				}
			}
		}
		frontier = next
	}

	// Distance-ordered σ sweep.
	order := make([]uint32, 0, n)
	for v := 0; v < n; v++ {
		if dist[v] != graph.InfWeightedDist {
			order = append(order, uint32(v))
		}
	}
	sort.Slice(order, func(i, j int) bool { return dist[order[i]] < dist[order[j]] })
	sigma := make([]float64, n)
	sigma[s] = 1
	for _, v := range order {
		if v == s {
			continue
		}
		srcs, ws := g.InEdges(v)
		var acc float64
		for i, u := range srcs {
			if du := dist[u]; du != graph.InfWeightedDist && du+uint64(ws[i]) == dist[v] {
				acc += sigma[u]
			}
		}
		sigma[v] = acc
	}

	// Reverse-ordered dependency sweep.
	delta := make([]float64, n)
	deps := make([]float64, n)
	for i := len(order) - 1; i >= 0; i-- {
		w := order[i]
		coeff := (1 + delta[w]) / sigma[w]
		srcs, ws := g.InEdges(w)
		for j, v := range srcs {
			if dv := dist[v]; dv != graph.InfWeightedDist && dv+uint64(ws[j]) == dist[w] {
				delta[v] += sigma[v] * coeff
			}
		}
		if w != s {
			deps[w] = delta[w]
		}
	}
	return deps
}
