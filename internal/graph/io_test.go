package graph

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func TestTextRoundTrip(t *testing.T) {
	g := FromEdges(5, [][2]uint32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 3}})
	var buf bytes.Buffer
	if err := g.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(g, g2) {
		t.Fatal("text round-trip changed the graph")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 200, 1500)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(g, g2) {
		t.Fatal("binary round-trip changed the graph")
	}
}

func TestReadTextHeaderAndComments(t *testing.T) {
	in := "# a comment\nn 10\n\n0 1\n1 9\n"
	g, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 10 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestReadTextInfersVertexCount(t *testing.T) {
	g, err := ReadText(strings.NewReader("0 5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 6 {
		t.Fatalf("inferred n = %d, want 6", g.NumVertices())
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"n x\n",      // bad header value
		"0\n",        // missing endpoint
		"0 a\n",      // bad ID
		"n 2\n0 5\n", // ID exceeds declared count
		"n -3\n",     // negative count
		"1 2 3\n",    // too many fields
	}
	for _, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); !errors.Is(err, ErrBadFormat) {
			t.Errorf("input %q: err = %v, want ErrBadFormat", in, err)
		}
	}
}

func TestReadBinaryErrors(t *testing.T) {
	g := FromEdges(3, [][2]uint32{{0, 1}, {1, 2}})
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Truncations at every interesting boundary.
	for _, cut := range []int{0, 4, 8, 16, 24, len(full) - 1} {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); !errors.Is(err, ErrBadFormat) {
			t.Errorf("cut %d: err = %v, want ErrBadFormat", cut, err)
		}
	}

	// Corrupt magic.
	bad := append([]byte(nil), full...)
	bad[0] ^= 0xFF
	if _, err := ReadBinary(bytes.NewReader(bad)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("bad magic: err = %v", err)
	}

	// Out-of-range edge target.
	bad = append([]byte(nil), full...)
	// layout: magic(8) n(8) m(8) offsets(4*8) dsts...
	dstOff := 8 + 8 + 8 + 4*8
	bad[dstOff] = 0xFF
	bad[dstOff+1] = 0xFF
	if _, err := ReadBinary(bytes.NewReader(bad)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("bad edge target: err = %v", err)
	}
}

func TestLoadSaveByExtension(t *testing.T) {
	dir := t.TempDir()
	g := FromEdges(4, [][2]uint32{{0, 1}, {1, 2}, {2, 3}})
	for _, name := range []string{"g.txt", "g.gr", "g.bin"} {
		path := filepath.Join(dir, name)
		if err := g.Save(path); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		g2, err := Load(path)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if !sameGraph(g, g2) {
			t.Fatalf("%s: round trip changed graph", name)
		}
	}
	if _, err := Load(filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("loading a missing file should fail")
	}
}

func sameGraph(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	same := true
	a.Edges(func(u, v uint32) {
		if !b.HasEdge(u, v) {
			same = false
		}
	})
	return same
}
