package gluon

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame asserts the frame decoder never panics on arbitrary
// bytes and that acceptance implies a frame EncodeFrame could have
// produced: DecodeFrame is the one parser in the sync path that sees
// raw, possibly-corrupted network bytes (DecodeUpdates only ever sees
// payloads the frame checksum already vouched for).
func FuzzDecodeFrame(f *testing.F) {
	f.Add(EncodeFrame(0, nil))
	f.Add(EncodeFrame(42, []byte("payload")))
	f.Add(EncodeFrame(1<<31, bytes.Repeat([]byte{0xaa}, 100)))
	f.Add([]byte("GLNF"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		seq, payload, err := DecodeFrame(data)
		if err != nil {
			return
		}
		// Accepted frames must re-encode to the identical bytes: the
		// format has no slack (fixed header, exact length, checksum),
		// so decode∘encode is the identity on valid frames.
		if re := EncodeFrame(seq, payload); !bytes.Equal(re, data) {
			t.Fatalf("accepted frame is not canonical: % x != % x", re, data)
		}
	})
}
