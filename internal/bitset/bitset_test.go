package bitset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
	if s.Any() {
		t.Fatal("new set should be empty")
	}
	if s.Count() != 0 {
		t.Fatalf("Count = %d, want 0", s.Count())
	}
	if !s.None() {
		t.Fatal("None should be true for empty set")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative capacity")
		}
	}()
	New(-1)
}

func TestSetTestClear(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Test(i) {
			t.Fatalf("bit %d set before Set", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Clear(64)
	if s.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for name, fn := range map[string]func(){
		"Set":    func() { s.Set(10) },
		"Test":   func() { s.Test(-1) },
		"Clear":  func() { s.Clear(11) },
		"SetNeg": func() { s.Set(-5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFillAndReset(t *testing.T) {
	s := New(70)
	s.Fill()
	if got := s.Count(); got != 70 {
		t.Fatalf("Count after Fill = %d, want 70", got)
	}
	// Fill must not set bits beyond capacity (trim).
	if s.words[1]>>uint(70-64) != 0 {
		t.Fatal("Fill set bits beyond capacity")
	}
	s.Reset()
	if s.Any() {
		t.Fatal("set not empty after Reset")
	}
}

func TestFillExactWordBoundary(t *testing.T) {
	s := New(128)
	s.Fill()
	if got := s.Count(); got != 128 {
		t.Fatalf("Count = %d, want 128", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New(50)
	s.Set(3)
	c := s.Clone()
	c.Set(4)
	if s.Test(4) {
		t.Fatal("mutating clone changed original")
	}
	if !c.Test(3) {
		t.Fatal("clone missing original bit")
	}
}

func TestCopyFrom(t *testing.T) {
	a, b := New(40), New(40)
	a.Set(1)
	b.Set(2)
	b.CopyFrom(a)
	if !b.Test(1) || b.Test(2) {
		t.Fatalf("CopyFrom result wrong: %v", b.Slice())
	}
}

func TestSetAlgebra(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(1)
	a.Set(2)
	a.Set(70)
	b.Set(2)
	b.Set(3)
	b.Set(70)

	u := a.Clone()
	u.Union(b)
	if got, want := u.Slice(), []int{1, 2, 3, 70}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Union = %v, want %v", got, want)
	}

	i := a.Clone()
	i.Intersect(b)
	if got, want := i.Slice(), []int{2, 70}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}

	d := a.Clone()
	d.Difference(b)
	if got, want := d.Slice(), []int{1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Difference = %v, want %v", got, want)
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	a, b := New(10), New(20)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on capacity mismatch")
		}
	}()
	a.Union(b)
}

func TestEqual(t *testing.T) {
	a, b := New(65), New(65)
	if !a.Equal(b) {
		t.Fatal("empty sets should be equal")
	}
	a.Set(64)
	if a.Equal(b) {
		t.Fatal("unequal sets reported equal")
	}
	b.Set(64)
	if !a.Equal(b) {
		t.Fatal("equal sets reported unequal")
	}
	c := New(66)
	c.Set(64)
	if a.Equal(c) {
		t.Fatal("sets of different capacity reported equal")
	}
}

func TestNextSet(t *testing.T) {
	s := New(200)
	for _, i := range []int{5, 63, 64, 130, 199} {
		s.Set(i)
	}
	cases := []struct {
		from int
		want int
		ok   bool
	}{
		{0, 5, true}, {5, 5, true}, {6, 63, true}, {64, 64, true},
		{65, 130, true}, {131, 199, true}, {-7, 5, true}, {200, 0, false},
	}
	for _, c := range cases {
		got, ok := s.NextSet(c.from)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("NextSet(%d) = (%d,%v), want (%d,%v)", c.from, got, ok, c.want, c.ok)
		}
	}
	empty := New(10)
	if _, ok := empty.NextSet(0); ok {
		t.Fatal("NextSet on empty set returned a bit")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := New(100)
	s.Set(1)
	s.Set(2)
	s.Set(3)
	var seen []int
	s.ForEach(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 2
	})
	if got, want := seen, []int{1, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("early stop saw %v, want %v", got, want)
	}
}

func TestString(t *testing.T) {
	s := New(10)
	s.Set(2)
	s.Set(7)
	if got := s.String(); got != "[2 7]" {
		t.Fatalf("String = %q", got)
	}
}

// Property: Slice returns exactly the indices that were set, sorted,
// without duplicates.
func TestQuickSliceMatchesModel(t *testing.T) {
	f := func(idx []uint16) bool {
		s := New(1 << 16)
		model := map[int]bool{}
		for _, i := range idx {
			s.Set(int(i))
			model[int(i)] = true
		}
		got := s.Slice()
		if len(got) != len(model) {
			return false
		}
		prev := -1
		for _, i := range got {
			if !model[i] || i <= prev {
				return false
			}
			prev = i
		}
		return s.Count() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan-ish identity |A∪B| + |A∩B| == |A| + |B|.
func TestQuickInclusionExclusion(t *testing.T) {
	f := func(aIdx, bIdx []uint8) bool {
		a, b := New(256), New(256)
		for _, i := range aIdx {
			a.Set(int(i))
		}
		for _, i := range bIdx {
			b.Set(int(i))
		}
		u := a.Clone()
		u.Union(b)
		x := a.Clone()
		x.Intersect(b)
		return u.Count()+x.Count() == a.Count()+b.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Difference then Union with the same operand restores a
// superset relationship: (A\B) ∪ (A∩B) == A.
func TestQuickDifferencePartition(t *testing.T) {
	f := func(aIdx, bIdx []uint8) bool {
		a, b := New(256), New(256)
		for _, i := range aIdx {
			a.Set(int(i))
		}
		for _, i := range bIdx {
			b.Set(int(i))
		}
		diff := a.Clone()
		diff.Difference(b)
		inter := a.Clone()
		inter.Intersect(b)
		diff.Union(inter)
		return diff.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := New(500)
	model := map[int]bool{}
	for op := 0; op < 5000; op++ {
		i := rng.Intn(500)
		switch rng.Intn(3) {
		case 0:
			s.Set(i)
			model[i] = true
		case 1:
			s.Clear(i)
			delete(model, i)
		case 2:
			if s.Test(i) != model[i] {
				t.Fatalf("op %d: Test(%d) = %v, model %v", op, i, s.Test(i), model[i])
			}
		}
	}
	if s.Count() != len(model) {
		t.Fatalf("final Count = %d, model %d", s.Count(), len(model))
	}
}

func BenchmarkSetAndCount(b *testing.B) {
	s := New(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Set(i & (1<<16 - 1))
		if i&1023 == 0 {
			_ = s.Count()
		}
	}
}

func BenchmarkForEach(b *testing.B) {
	s := New(1 << 16)
	for i := 0; i < 1<<16; i += 7 {
		s.Set(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	sum := 0
	for i := 0; i < b.N; i++ {
		s.ForEach(func(j int) bool { sum += j; return true })
	}
	_ = sum
}

func TestRank(t *testing.T) {
	s := New(200)
	for _, i := range []int{0, 5, 63, 64, 130} {
		s.Set(i)
	}
	cases := map[int]int{0: 0, 1: 1, 5: 1, 6: 2, 64: 3, 65: 4, 131: 5, 200: 5, 500: 5, -3: 0}
	for i, want := range cases {
		if got := s.Rank(i); got != want {
			t.Errorf("Rank(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestWordsExposesBacking(t *testing.T) {
	s := New(70)
	s.Set(64)
	w := s.Words()
	if len(w) != 2 || w[1] != 1 {
		t.Fatalf("Words = %v", w)
	}
}

func TestFirstAndNot(t *testing.T) {
	s := New(200)
	o := New(200)
	if got := s.FirstAndNot(o); got != -1 {
		t.Fatalf("empty FirstAndNot = %d, want -1", got)
	}
	s.Set(5)
	s.Set(64)
	s.Set(130)
	if got := s.FirstAndNot(o); got != 5 {
		t.Fatalf("FirstAndNot = %d, want 5", got)
	}
	o.Set(5)
	if got := s.FirstAndNot(o); got != 64 {
		t.Fatalf("FirstAndNot = %d, want 64", got)
	}
	o.Set(64)
	o.Set(130)
	if got := s.FirstAndNot(o); got != -1 {
		t.Fatalf("fully covered FirstAndNot = %d, want -1", got)
	}
	// o may be shorter than s: bits beyond its capacity read as clear.
	short := New(10)
	if got := s.FirstAndNot(short); got != 5 {
		t.Fatalf("short-other FirstAndNot = %d, want 5", got)
	}
}

// TestNextSetMatchesForEach pins the word-skipping NextSet iteration —
// the loop the gluon sparse encoder costs and emits with — against the
// reference ForEach enumeration on random sets.
func TestNextSetMatchesForEach(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		s := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(10) == 0 {
				s.Set(i)
			}
		}
		var want []int
		s.ForEach(func(i int) bool { want = append(want, i); return true })
		var got []int
		for i, ok := s.NextSet(0); ok; i, ok = s.NextSet(i + 1) {
			got = append(got, i)
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkNextSetSparse pins that iterating a near-empty set skips
// whole empty words: one set bit at the end of a million-bit set should
// cost a linear word scan, not a per-bit scan, and allocate nothing.
func BenchmarkNextSetSparse(b *testing.B) {
	s := New(1 << 20)
	s.Set(1<<20 - 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := 0
		for j, ok := s.NextSet(0); ok; j, ok = s.NextSet(j + 1) {
			n++
		}
		if n != 1 {
			b.Fatal("lost the bit")
		}
	}
}

func BenchmarkForEachDense(b *testing.B) {
	s := New(1 << 16)
	for i := 0; i < s.Len(); i += 2 {
		s.Set(i)
	}
	b.ReportAllocs()
	sink := 0
	for i := 0; i < b.N; i++ {
		s.ForEach(func(j int) bool { sink += j; return true })
	}
	_ = sink
}
